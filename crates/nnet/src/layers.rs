//! Fully connected layers with analytic forward/backward passes.
//!
//! Both DeePMD sub-networks are tiny MLPs:
//!
//! * the **embedding net** maps the smoothed inverse distance `s(r)` through
//!   widening layers (e.g. 25 → 50 → 100) with *ResNet doubling* skips
//!   (when `out = 2·in`, the input is concatenated with itself and added);
//! * the **fitting net** maps the descriptor through three equal-width
//!   layers (240 → 240 → 240) with identity skips, then a final linear
//!   output producing the atomic energy.
//!
//! Training (crate `deepmd`) runs entirely in f64 through these layers; the
//! mixed-precision inference paths cast the trained parameters and call the
//! raw GEMM kernels directly.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::gemm;
use crate::matrix::Matrix;

/// Residual connection style of a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resnet {
    /// Plain layer: `y = act(xW + b)`.
    None,
    /// Identity skip (requires `out == in`): `y = act(xW + b) + x`.
    Identity,
    /// Doubling skip (requires `out == 2·in`): `y = act(xW + b) + [x, x]`.
    Doubling,
}

/// One dense layer `y = act(x·W + b) (+ skip)` with `W: in×out` row-major.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `in_dim × out_dim`, row-major (so `x·W` is GEMM-NN).
    pub w: Matrix<f64>,
    /// Bias, length `out_dim`.
    pub b: Vec<f64>,
    /// Activation applied element-wise after the affine map.
    pub act: Activation,
    /// Residual connection style.
    pub resnet: Resnet,
}

/// Values saved by a forward pass, needed to run the backward pass.
#[derive(Clone, Debug)]
pub struct DenseCache {
    /// Layer input, `batch × in`.
    pub input: Matrix<f64>,
    /// Pre-activation `xW + b`, `batch × out`.
    pub preact: Matrix<f64>,
}

/// Parameter gradients produced by a backward pass.
#[derive(Clone, Debug)]
pub struct DenseGrads {
    /// `∂L/∂W`, same shape as `w`.
    pub dw: Matrix<f64>,
    /// `∂L/∂b`, same length as `b`.
    pub db: Vec<f64>,
}

impl Dense {
    /// A layer with Xavier/Glorot-uniform weights and zero bias.
    pub fn xavier(in_dim: usize, out_dim: usize, act: Activation, resnet: Resnet, rng: &mut StdRng) -> Self {
        match resnet {
            Resnet::Identity => assert_eq!(in_dim, out_dim, "identity skip needs out == in"),
            Resnet::Doubling => assert_eq!(2 * in_dim, out_dim, "doubling skip needs out == 2·in"),
            Resnet::None => {}
        }
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = Matrix::from_fn(in_dim, out_dim, |_, _| rng.random_range(-limit..limit));
        Dense { w, b: vec![0.0; out_dim], act, resnet }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward pass returning the output and the cache for backprop.
    pub fn forward(&self, x: &Matrix<f64>) -> (Matrix<f64>, DenseCache) {
        let batch = x.rows();
        let (ind, outd) = (self.in_dim(), self.out_dim());
        assert_eq!(x.cols(), ind, "input width mismatch");
        let mut pre = Matrix::zeros(batch, outd);
        gemm::naive::gemm_nn_f64(batch, outd, ind, x.as_slice(), self.w.as_slice(), pre.as_mut_slice());
        for r in 0..batch {
            let row = pre.row_mut(r);
            for (v, &bb) in row.iter_mut().zip(&self.b) {
                *v += bb;
            }
        }
        let mut out = pre.clone();
        self.act.apply_slice(out.as_mut_slice());
        match self.resnet {
            Resnet::None => {}
            Resnet::Identity => {
                for (o, &i) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    *o += i;
                }
            }
            Resnet::Doubling => {
                for r in 0..batch {
                    for c in 0..ind {
                        let xv = x[(r, c)];
                        out[(r, c)] += xv;
                        out[(r, c + ind)] += xv;
                    }
                }
            }
        }
        (out, DenseCache { input: x.clone(), preact: pre })
    }

    /// Forward pass without caching (inference).
    pub fn forward_infer(&self, x: &Matrix<f64>) -> Matrix<f64> {
        self.forward(x).0
    }

    /// Backward pass: given `∂L/∂y`, return `∂L/∂x` and parameter grads.
    pub fn backward(&self, cache: &DenseCache, dout: &Matrix<f64>) -> (Matrix<f64>, DenseGrads) {
        let batch = cache.input.rows();
        let (ind, outd) = (self.in_dim(), self.out_dim());
        assert_eq!(dout.rows(), batch);
        assert_eq!(dout.cols(), outd);

        // Through the activation: dpre = dout ⊙ act'(pre).
        let mut dpre = dout.clone();
        for (g, &p) in dpre.as_mut_slice().iter_mut().zip(cache.preact.as_slice()) {
            *g *= self.act.derivative(p);
        }

        // dW = xᵀ · dpre  (computed as NT-free loops over the batch).
        let mut dw = Matrix::zeros(ind, outd);
        for r in 0..batch {
            let xr = cache.input.row(r);
            let gr = dpre.row(r);
            for (i, &xv) in xr.iter().enumerate() {
                let dwr = dw.row_mut(i);
                for (d, &gv) in dwr.iter_mut().zip(gr) {
                    *d += xv * gv;
                }
            }
        }
        // db = column sums of dpre.
        let mut db = vec![0.0; outd];
        for r in 0..batch {
            for (d, &g) in db.iter_mut().zip(dpre.row(r)) {
                *d += g;
            }
        }
        // dx = dpre · Wᵀ — this is the GEMM-NT the paper converts to NN by
        // pre-transposing W at startup; training keeps the NT form.
        let mut dx = Matrix::zeros(batch, ind);
        gemm::naive::gemm_nt_f64(batch, ind, outd, dpre.as_slice(), self.w.as_slice(), dx.as_mut_slice());

        // Skip-path gradient flows straight through.
        match self.resnet {
            Resnet::None => {}
            Resnet::Identity => {
                for (d, &g) in dx.as_mut_slice().iter_mut().zip(dout.as_slice()) {
                    *d += g;
                }
            }
            Resnet::Doubling => {
                for r in 0..batch {
                    for c in 0..ind {
                        dx[(r, c)] += dout[(r, c)] + dout[(r, c + ind)];
                    }
                }
            }
        }
        (dx, DenseGrads { dw, db })
    }
}

/// A stack of dense layers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers, applied in order.
    pub layers: Vec<Dense>,
}

impl Mlp {
    /// Build an MLP from explicit layers.
    pub fn new(layers: Vec<Dense>) -> Self {
        for pair in layers.windows(2) {
            assert_eq!(pair[0].out_dim(), pair[1].in_dim(), "layer widths must chain");
        }
        Mlp { layers }
    }

    /// Input dimension of the first layer.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::in_dim)
    }

    /// Output dimension of the last layer.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::out_dim)
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass collecting per-layer caches.
    pub fn forward(&self, x: &Matrix<f64>) -> (Matrix<f64>, Vec<DenseCache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&cur);
            caches.push(cache);
            cur = out;
        }
        (cur, caches)
    }

    /// Inference-only forward pass.
    pub fn forward_infer(&self, x: &Matrix<f64>) -> Matrix<f64> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward_infer(&cur);
        }
        cur
    }

    /// Backward pass: returns input gradient and per-layer parameter grads.
    pub fn backward(&self, caches: &[DenseCache], dout: &Matrix<f64>) -> (Matrix<f64>, Vec<DenseGrads>) {
        assert_eq!(caches.len(), self.layers.len());
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut d = dout.clone();
        for (layer, cache) in self.layers.iter().zip(caches).rev() {
            let (dx, g) = layer.backward(cache, &d);
            grads.push(g);
            d = dx;
        }
        grads.reverse();
        (d, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_mlp(rng: &mut StdRng) -> Mlp {
        Mlp::new(vec![
            Dense::xavier(3, 6, Activation::Tanh, Resnet::Doubling, rng),
            Dense::xavier(6, 6, Activation::Tanh, Resnet::Identity, rng),
            Dense::xavier(6, 1, Activation::Linear, Resnet::None, rng),
        ])
    }

    /// The gold-standard test: analytic input gradient equals central finite
    /// differences of the scalar output.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(42);
        let mlp = tiny_mlp(&mut rng);
        let x = Matrix::from_fn(2, 3, |_, _| rng.random_range(-1.0..1.0));
        let (out, caches) = mlp.forward(&x);
        assert_eq!(out.cols(), 1);
        // L = sum of outputs; dL/dout = ones.
        let dout = Matrix::from_fn(2, 1, |_, _| 1.0);
        let (dx, _) = mlp.backward(&caches, &dout);

        let h = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let lp: f64 = mlp.forward_infer(&xp).as_slice().iter().sum();
                let lm: f64 = mlp.forward_infer(&xm).as_slice().iter().sum();
                let fd = (lp - lm) / (2.0 * h);
                assert!((fd - dx[(r, c)]).abs() < 1e-5, "({r},{c}): fd={fd} an={}", dx[(r, c)]);
            }
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(43);
        let mut mlp = tiny_mlp(&mut rng);
        let x = Matrix::from_fn(4, 3, |_, _| rng.random_range(-1.0..1.0));
        let (_, caches) = mlp.forward(&x);
        let dout = Matrix::from_fn(4, 1, |_, _| 1.0);
        let (_, grads) = mlp.backward(&caches, &dout);

        let h = 1e-6;
        // Spot-check a handful of weights in layer 1.
        for &(wi, wj) in &[(0, 0), (2, 3), (5, 5)] {
            let orig = mlp.layers[1].w[(wi, wj)];
            mlp.layers[1].w[(wi, wj)] = orig + h;
            let lp: f64 = mlp.forward_infer(&x).as_slice().iter().sum();
            mlp.layers[1].w[(wi, wj)] = orig - h;
            let lm: f64 = mlp.forward_infer(&x).as_slice().iter().sum();
            mlp.layers[1].w[(wi, wj)] = orig;
            let fd = (lp - lm) / (2.0 * h);
            let an = grads[1].dw[(wi, wj)];
            assert!((fd - an).abs() < 1e-5, "w[{wi},{wj}]: fd={fd} an={an}");
        }
    }

    #[test]
    fn bias_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(44);
        let mut mlp = tiny_mlp(&mut rng);
        let x = Matrix::from_fn(3, 3, |_, _| rng.random_range(-1.0..1.0));
        let (_, caches) = mlp.forward(&x);
        let dout = Matrix::from_fn(3, 1, |_, _| 1.0);
        let (_, grads) = mlp.backward(&caches, &dout);
        let h = 1e-6;
        let orig = mlp.layers[0].b[2];
        mlp.layers[0].b[2] = orig + h;
        let lp: f64 = mlp.forward_infer(&x).as_slice().iter().sum();
        mlp.layers[0].b[2] = orig - h;
        let lm: f64 = mlp.forward_infer(&x).as_slice().iter().sum();
        mlp.layers[0].b[2] = orig;
        let fd = (lp - lm) / (2.0 * h);
        assert!((fd - grads[0].db[2]).abs() < 1e-5);
    }

    #[test]
    fn resnet_identity_shifts_output_by_input() {
        let mut rng = StdRng::seed_from_u64(45);
        let mut layer = Dense::xavier(4, 4, Activation::Tanh, Resnet::Identity, &mut rng);
        let x = Matrix::from_fn(1, 4, |_, c| c as f64 * 0.1);
        let with_skip = layer.forward_infer(&x);
        layer.resnet = Resnet::None;
        let without = layer.forward_infer(&x);
        for c in 0..4 {
            assert!((with_skip[(0, c)] - without[(0, c)] - x[(0, c)]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "doubling skip")]
    fn doubling_requires_double_width() {
        let mut rng = StdRng::seed_from_u64(46);
        let _ = Dense::xavier(4, 6, Activation::Tanh, Resnet::Doubling, &mut rng);
    }

    #[test]
    fn param_count_adds_up() {
        let mut rng = StdRng::seed_from_u64(47);
        let mlp = tiny_mlp(&mut rng);
        assert_eq!(mlp.param_count(), (3 * 6 + 6) + (6 * 6 + 6) + (6 + 1));
    }
}
