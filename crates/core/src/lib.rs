//! # dpmd-core — the public API of the reproduction
//!
//! One façade over the whole stack: build or train a Deep Potential model,
//! run *functional* molecular dynamics with it at any of the paper's
//! precision modes, and predict *at-scale performance* (ns/day) for any
//! Fugaku topology and optimization level.
//!
//! ```no_run
//! use dpmd_core::prelude::*;
//!
//! // Functional MD: a small copper box, MIX-fp32 inference.
//! let engine = Engine::builder()
//!     .copper_cells(3)
//!     .precision(Precision::Mix32)
//!     .temperature(300.0)
//!     .build();
//! let trace = engine.simulate(100);
//! println!("final T = {:.1} K", trace.last().unwrap().temperature);
//!
//! // Performance prediction: the paper's headline configuration.
//! let perf = Performance::new(SystemSpec::copper());
//! let nsday = perf.nsday([20, 30, 20], OptLevel::CommLb);
//! println!("predicted {nsday:.0} ns/day on 12,000 nodes");
//! ```

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod engine;
pub mod performance;

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::engine::{run_faulted_md, Engine, EngineBuilder, EngineParts, FaultedMdReport};
    pub use crate::performance::Performance;
    pub use dpmd_comm::fault::{FaultPlan, FaultStats};
    pub use dpmd_comm::functional::ExchangeScheme;
    pub use deepmd::config::DeepPotConfig;
    pub use deepmd::model::DeepPotModel;
    pub use dpmd_scaling::kernels::OptLevel;
    pub use dpmd_scaling::systems::SystemSpec;
    pub use dpmd_obs::{MetricsRegistry, TraceBuffer};
    pub use minimd::sim::{StepTiming, Thermo};
    pub use nnet::precision::Precision;
}

pub use engine::{Engine, EngineBuilder, EngineParts};
pub use performance::Performance;
