//! At-scale performance prediction: the paper's headline numbers from the
//! simulated machine.

use dpmd_scaling::kernels::OptLevel;
use dpmd_scaling::step_model::{StepBreakdown, StepModel};
use dpmd_scaling::systems::SystemSpec;
use fugaku::tofu::Torus3d;
use minimd::atoms::Atoms;
use minimd::domain::Decomposition;
use minimd::simbox::SimBox;

/// Performance predictor for one benchmark system at full paper size.
pub struct Performance {
    model: StepModel,
    bx: SimBox,
    atoms: Atoms,
}

impl Performance {
    /// Build the full-size system (0.54 M Cu / 0.56 M H₂O atoms) once.
    pub fn new(spec: SystemSpec) -> Self {
        let model = StepModel::new(spec);
        let (bx, atoms) = spec.build_full(1);
        Performance { model, bx, atoms }
    }

    /// The benchmark spec.
    pub fn spec(&self) -> &SystemSpec {
        &self.model.spec
    }

    /// Atom count of the built system.
    pub fn natoms(&self) -> usize {
        self.atoms.nlocal
    }

    /// Per-step breakdown on a node topology at an optimization level.
    pub fn step(&self, nodes: [usize; 3], level: OptLevel) -> StepBreakdown {
        let decomp = Decomposition::new(self.bx, nodes);
        let torus = Torus3d::new(nodes);
        self.model.evaluate(&decomp, &torus, &self.atoms, level)
    }

    /// Simulated nanoseconds per day.
    pub fn nsday(&self, nodes: [usize; 3], level: OptLevel) -> f64 {
        self.step(nodes, level).ns_per_day(self.model.spec.timestep_fs)
    }

    /// Speedup of the fully optimized code over the baseline on a topology.
    pub fn speedup(&self, nodes: [usize; 3]) -> f64 {
        self.nsday(nodes, OptLevel::CommLb) / self.nsday(nodes, OptLevel::Baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copper_768_nodes_prediction_is_sane() {
        let perf = Performance::new(SystemSpec::copper());
        assert!((perf.natoms() as f64 - 540_000.0).abs() / 540_000.0 < 0.02);
        let nsday = perf.nsday([8, 12, 8], OptLevel::CommLb);
        assert!(nsday > 5.0 && nsday < 200.0, "ns/day {nsday}");
        let sp = perf.speedup([8, 12, 8]);
        assert!(sp > 5.0, "speedup {sp}");
    }
}
