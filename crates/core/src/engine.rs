//! The functional engine: train or load a Deep Potential model and run MD
//! with it at any precision, through a builder API.

use std::sync::Arc;

use deepmd::config::DeepPotConfig;
use deepmd::dataset;
use deepmd::engine::DpEngine;
use deepmd::model::DeepPotModel;
use deepmd::train::{fit_energy_bias, train, TrainConfig};
use dpmd_obs::{MetricsRegistry, TraceBuffer};
use dpmd_threads::ThreadPool;
use minimd::integrate::{init_velocities, Thermostat, VelocityVerlet};
use minimd::sim::{Simulation, StepTiming, Thermo};
use minimd::units::FEMTOSECOND;
use nnet::precision::Precision;

/// Which physical system the engine sets up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// FCC copper, `cells³` conventional cells.
    Copper {
        /// Cells per edge.
        cells: usize,
    },
    /// Water, `cells³` molecules on a liquid-density lattice.
    Water {
        /// Molecules per edge.
        cells: usize,
    },
}

/// Builder for [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    system: SystemKind,
    precision: Precision,
    temperature: f64,
    timestep_fs: f64,
    seed: u64,
    train_frames: usize,
    train_epochs: usize,
    thermostat: bool,
    compression: Option<usize>,
    model: Option<DeepPotModel>,
    threads: Option<usize>,
    obs: Option<(MetricsRegistry, TraceBuffer)>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            system: SystemKind::Copper { cells: 3 },
            precision: Precision::Double,
            temperature: 300.0,
            timestep_fs: 1.0,
            seed: 42,
            train_frames: 3,
            train_epochs: 40,
            thermostat: true,
            compression: None,
            model: None,
            threads: None,
            obs: None,
        }
    }
}

impl EngineBuilder {
    /// Copper system with `cells³` FCC cells.
    pub fn copper_cells(mut self, cells: usize) -> Self {
        self.system = SystemKind::Copper { cells };
        self.timestep_fs = 1.0;
        self
    }

    /// Water system with `cells³` molecules.
    pub fn water_cells(mut self, cells: usize) -> Self {
        self.system = SystemKind::Water { cells };
        self.timestep_fs = 0.5;
        self
    }

    /// Inference precision (Double / MIX-fp32 / MIX-fp16).
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Initial (and thermostat target) temperature, K.
    pub fn temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Time-step, fs.
    pub fn timestep_fs(mut self, dt: f64) -> Self {
        self.timestep_fs = dt;
        self
    }

    /// RNG seed for the whole pipeline.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Training effort for the bundled model (frames, epochs). Zero epochs
    /// skips training (bias-only model).
    pub fn training(mut self, frames: usize, epochs: usize) -> Self {
        self.train_frames = frames;
        self.train_epochs = epochs;
        self
    }

    /// Run NVE instead of the default Berendsen-thermostatted NVT.
    pub fn nve(mut self) -> Self {
        self.thermostat = false;
        self
    }

    /// Use a pre-trained model instead of training one here.
    pub fn with_model(mut self, model: DeepPotModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Enable DP-Compress: tabulate the embedding nets with `intervals`
    /// pieces (the deployment configuration of the baseline work [33]).
    pub fn compressed(mut self, intervals: usize) -> Self {
        self.compression = Some(intervals);
        self
    }

    /// Run force evaluations on a private pool of `n` threads instead of
    /// the process-global pool. Results are bit-identical for any `n`
    /// (chunk-ordered reduction); only wall time changes.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Record metrics into `registry` and per-step span trees into `trace`
    /// (the `md --profile/--trace` path). A no-op unless `dpmd-obs` is
    /// built with its `capture` feature.
    pub fn observe(mut self, registry: MetricsRegistry, trace: TraceBuffer) -> Self {
        self.obs = Some((registry, trace));
        self
    }

    /// Train (if needed) and assemble the engine.
    pub fn build(self) -> Engine {
        Engine::assemble(self.build_parts())
    }

    /// Train (if needed) and return the resolved pieces without assembling a
    /// simulation — the batch scheduler (`dpmd-serve`) uses this to stamp
    /// out many replicas over one trained model, varying only the seed.
    pub fn build_parts(self) -> EngineParts {
        let model: DeepPotModel = match self.model.clone() {
            Some(m) => m,
            None => {
                let (cfg, frames) = match self.system {
                    SystemKind::Copper { .. } => (
                        DeepPotConfig::tiny(1, 6.0),
                        dataset::copper_frames(self.train_frames.max(1), 2, 0.08, self.seed),
                    ),
                    SystemKind::Water { .. } => (
                        DeepPotConfig::tiny(2, 6.0),
                        dataset::water_frames(self.train_frames.max(1), 3, 0, self.seed),
                    ),
                };
                let mut model = DeepPotModel::new(cfg);
                fit_energy_bias(&mut model, &frames);
                if self.train_epochs > 0 {
                    train(
                        &mut model,
                        &frames,
                        TrainConfig { epochs: self.train_epochs, lr: 3e-3, log_every: 0 },
                    );
                }
                model
            }
        };
        let mut model = model;
        if let Some(intervals) = self.compression {
            model.enable_compression(intervals);
        }
        EngineParts {
            model,
            system: self.system,
            precision: self.precision,
            temperature: self.temperature,
            timestep_fs: self.timestep_fs,
            seed: self.seed,
            thermostat: self.thermostat,
            threads: self.threads,
            obs: self.obs,
        }
    }
}

/// The resolved output of [`EngineBuilder::build_parts`]: a trained (or
/// supplied) model plus every setting needed to assemble simulations over
/// it. [`Engine::assemble`] consumes one; `dpmd-serve` keeps one and builds
/// R replica simulations from it, varying [`seed`](Self::seed) per replica.
pub struct EngineParts {
    /// The trained/supplied model (compression already applied).
    pub model: DeepPotModel,
    /// Which physical system replicas simulate.
    pub system: SystemKind,
    /// Inference precision.
    pub precision: Precision,
    /// Initial (and thermostat target) temperature, K.
    pub temperature: f64,
    /// Time-step, fs.
    pub timestep_fs: f64,
    /// Lattice/velocity seed.
    pub seed: u64,
    /// Berendsen NVT when true, NVE when false.
    pub thermostat: bool,
    /// Private-pool width, if requested.
    pub threads: Option<usize>,
    /// Metric/trace sinks, if observing.
    pub obs: Option<(MetricsRegistry, TraceBuffer)>,
}

impl EngineParts {
    /// Build the system's initial state (box, atoms, velocities) from the
    /// current [`seed`](Self::seed).
    pub fn initial_state(&self) -> (minimd::simbox::SimBox, minimd::atoms::Atoms) {
        let (bx, mut atoms) = match self.system {
            SystemKind::Copper { cells } => minimd::lattice::fcc_copper(cells, cells, cells),
            SystemKind::Water { cells } => minimd::lattice::water_box(cells, cells, cells, self.seed),
        };
        init_velocities(&mut atoms, self.temperature, self.seed);
        (bx, atoms)
    }

    /// The integrator (time-step + thermostat) these settings call for.
    pub fn integrator(&self) -> VelocityVerlet {
        let mut vv = VelocityVerlet::new(self.timestep_fs * FEMTOSECOND);
        if self.thermostat {
            vv.thermostat = Thermostat::Berendsen { t_target: self.temperature, tau_ps: 0.05 };
        }
        vv
    }
}

/// A ready-to-run MD engine over a Deep Potential model.
pub struct Engine {
    sim: Simulation,
    timestep_fs: f64,
    precision: Precision,
    obs: Option<(MetricsRegistry, TraceBuffer)>,
}

impl Engine {
    /// Start building.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    fn assemble(parts: EngineParts) -> Engine {
        let (bx, atoms) = parts.initial_state();
        let vv = parts.integrator();
        let mut dp = DpEngine::new(parts.model, parts.precision);
        if let Some(n) = parts.threads {
            dp = dp.with_pool(Arc::new(ThreadPool::new(n)));
        }
        if let Some((reg, _)) = &parts.obs {
            // Attach before the initial force evaluation in Simulation::new
            // so eval/GEMM counters cover the whole run.
            dp.attach_obs(reg);
        }
        // Paper settings: skin 2 Å, rebuild every 50 steps.
        let mut sim = Simulation::new(bx, atoms, Box::new(dp), vv, 2.0, 50);
        if let Some((reg, trace)) = &parts.obs {
            sim.attach_obs(reg, trace);
        }
        Engine {
            sim,
            timestep_fs: parts.timestep_fs,
            precision: parts.precision,
            obs: parts.obs,
        }
    }

    /// Advance `n` steps, returning the thermodynamic trace.
    pub fn simulate(mut self, n: u64) -> Vec<Thermo> {
        self.sim.run(n)
    }

    /// Advance `n` steps in place (keeps the engine usable).
    pub fn run(&mut self, n: u64) -> Vec<Thermo> {
        self.sim.run(n)
    }

    /// The underlying simulation (atoms, box, neighbour list).
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Simulation, mutable (custom observables).
    pub fn simulation_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Wall-clock breakdown of the last completed step (zeros before the
    /// first step).
    pub fn timing(&self) -> StepTiming {
        self.sim.timing()
    }

    /// The metrics registry attached via [`EngineBuilder::observe`], if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.obs.as_ref().map(|(r, _)| r)
    }

    /// The trace buffer attached via [`EngineBuilder::observe`], if any.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.obs.as_ref().map(|(_, t)| t)
    }

    /// The engine's precision mode.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Time-step in femtoseconds.
    pub fn timestep_fs(&self) -> f64 {
        self.timestep_fs
    }
}

/// Verdict of a faulted-vs-clean distributed MD comparison
/// ([`run_faulted_md`]).
#[derive(Clone, Debug)]
pub struct FaultedMdReport {
    /// Steps run.
    pub steps: u64,
    /// Exchange scheme of the faulted run.
    pub scheme: dpmd_comm::functional::ExchangeScheme,
    /// Fault/recovery counters accumulated by the faulted run.
    pub stats: dpmd_comm::fault::FaultStats,
    /// Whether the faulted trajectory matched the clean one bit for bit
    /// (positions and velocities of every atom).
    pub bitwise_identical: bool,
    /// Largest position deviation between the runs, Å (0 when bitwise).
    pub max_drift: f64,
}

/// Run the distributed LJ-copper driver twice — clean and under `plan` with
/// recovery enabled — and compare the trajectories. This is the engine-level
/// surface of the fault layer (and what `dpmd md --faults <spec>` prints):
/// with recovery, injected drops/duplicates/reorders/delays and stalled
/// leaders must leave the trajectory bit-identical.
///
/// `cells` is the FCC cells per box edge (clamped to ≥ 6 so the 2×2×2-node
/// decomposition's rank boxes stay wider than the ghost halo).
pub fn run_faulted_md(
    cells: usize,
    steps: u64,
    scheme: dpmd_comm::functional::ExchangeScheme,
    plan: dpmd_comm::fault::FaultPlan,
) -> FaultedMdReport {
    use dpmd_comm::driver::DistributedSim;
    use minimd::domain::Decomposition;
    use minimd::lattice::fcc_lattice;
    use minimd::potential::lj::LennardJones;

    let cells = cells.max(6);
    let (bx, mut global) = fcc_lattice(cells, cells, cells, 4.4);
    init_velocities(&mut global, 60.0, 5);
    let lj = LennardJones::new(0.0104, 3.4, 5.0);
    let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);

    let mut clean = DistributedSim::new(
        Decomposition::new(bx, [2, 2, 2]),
        &global,
        &lj,
        vv.clone(),
        scheme,
        10,
    );
    let mut faulted =
        DistributedSim::new(Decomposition::new(bx, [2, 2, 2]), &global, &lj, vv, scheme, 10);
    faulted.inject_faults(plan);

    for _ in 0..steps {
        clean.stride();
        faulted.stride();
    }
    let (gc, gf) = (clean.gather(), faulted.gather());
    let mut bitwise = gc.id == gf.id && gc.nlocal == gf.nlocal;
    let mut max_drift = 0.0f64;
    for i in 0..gc.nlocal.min(gf.nlocal) {
        for d in 0..3 {
            if gc.pos[i][d].to_bits() != gf.pos[i][d].to_bits()
                || gc.vel[i][d].to_bits() != gf.vel[i][d].to_bits()
            {
                bitwise = false;
            }
        }
        max_drift = max_drift.max((gc.pos[i] - gf.pos[i]).norm());
    }
    FaultedMdReport {
        steps,
        scheme,
        stats: *faulted.fault_stats().expect("faults were injected"),
        bitwise_identical: bitwise,
        max_drift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copper_engine_builds_and_steps() {
        let mut engine = Engine::builder().copper_cells(2).training(2, 10).seed(1).build();
        let trace = engine.run(5);
        assert_eq!(trace.len(), 5);
        assert!(trace.iter().all(|t| t.etotal.is_finite()));
        assert_eq!(engine.precision(), Precision::Double);
    }

    #[test]
    fn water_engine_with_fp16_precision() {
        let mut engine = Engine::builder()
            .water_cells(2)
            .precision(Precision::Mix16)
            .training(1, 5)
            .seed(2)
            .build();
        let trace = engine.run(3);
        assert!(trace.last().unwrap().temperature.is_finite());
        assert_eq!(engine.precision(), Precision::Mix16);
        assert_eq!(engine.timestep_fs(), 0.5);
    }

    #[test]
    fn prebuilt_model_is_reused() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 6.0));
        let engine = Engine::builder().copper_cells(2).with_model(model.clone()).build();
        // No training happened; the engine runs with the given weights.
        let trace = engine.simulate(2);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn compressed_engine_tracks_the_exact_one() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 6.0));
        let exact = Engine::builder().copper_cells(2).with_model(model.clone()).nve().seed(8).build();
        let tabulated = Engine::builder()
            .copper_cells(2)
            .with_model(model)
            .compressed(256)
            .nve()
            .seed(8)
            .build();
        let te = exact.simulate(5);
        let tt = tabulated.simulate(5);
        for (a, b) in te.iter().zip(&tt) {
            assert!((a.pe - b.pe).abs() < 1e-4, "step {}: {} vs {}", a.step, a.pe, b.pe);
        }
    }

    #[test]
    fn explicit_thread_count_matches_global_pool_bitwise() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 6.0));
        let mut one =
            Engine::builder().copper_cells(2).with_model(model.clone()).nve().seed(5).threads(1).build();
        let mut four =
            Engine::builder().copper_cells(2).with_model(model).nve().seed(5).threads(4).build();
        let ta = one.run(10);
        let tb = four.run(10);
        for (a, b) in ta.iter().zip(&tb) {
            assert_eq!(a.pe, b.pe, "step {}", a.step);
            assert_eq!(a.ke, b.ke, "step {}", a.step);
            assert_eq!(a.pressure, b.pressure, "step {}", a.step);
        }
    }

    #[test]
    fn step_timing_reports_deep_potential_phases() {
        let model = DeepPotModel::new(DeepPotConfig::tiny(1, 6.0));
        let mut engine =
            Engine::builder().copper_cells(3).with_model(model).nve().threads(2).build();
        engine.run(3);
        let t = engine.timing();
        assert!(t.total_s > 0.0);
        let dp = t.phases.total();
        assert!(dp > 0.0, "DP engine must report descriptor/embedding/fitting phases");
        // The three DP phases ARE the force evaluation, minus only the
        // zero-fill and buffer plumbing around it.
        assert!(dp <= t.force_s * 1.01, "phases {dp} vs force {}", t.force_s);
        assert!(dp >= 0.5 * t.force_s, "phases {dp} vs force {}", t.force_s);
        assert!(t.phase_sum_s() <= t.total_s * 1.01);
    }

    #[test]
    fn faulted_md_report_confirms_bitwise_recovery() {
        let report = run_faulted_md(
            6,
            6,
            dpmd_comm::functional::ExchangeScheme::NodeBased,
            dpmd_comm::fault::FaultPlan::chaos(17),
        );
        assert!(report.stats.faults_injected() > 0, "chaos plan must inject faults");
        assert!(
            report.bitwise_identical,
            "recovery must hide faults bit-for-bit (drift {})",
            report.max_drift
        );
        assert_eq!(report.max_drift, 0.0);
    }

    #[test]
    fn nve_mode_conserves_energy_reasonably() {
        let mut engine =
            Engine::builder().copper_cells(2).training(2, 20).temperature(80.0).nve().seed(3).build();
        let trace = engine.run(50);
        let e0 = trace.first().unwrap().etotal;
        let e1 = trace.last().unwrap().etotal;
        let natoms = engine.simulation().atoms.nlocal as f64;
        assert!(((e1 - e0) / natoms).abs() < 5e-3, "drift {}", ((e1 - e0) / natoms).abs());
    }
}
