//! Property-based tests of the machine model: torus metric axioms,
//! scheduler invariants, cache behaviour.

use proptest::prelude::*;

use fugaku::event::JobGraph;
use fugaku::niccache::NicCache;
use fugaku::tofu::Torus3d;

fn torus() -> impl Strategy<Value = Torus3d> {
    (1usize..10, 1usize..10, 1usize..10).prop_map(|(a, b, c)| Torus3d::new([a, b, c]))
}

proptest! {
    /// Torus hop count is a metric: symmetric, zero iff equal coordinates,
    /// triangle inequality.
    #[test]
    fn torus_hops_is_a_metric(t in torus(), s in any::<u64>()) {
        let n = t.len();
        let a = (s % n as u64) as usize;
        let b = ((s / 7) % n as u64) as usize;
        let c = ((s / 49) % n as u64) as usize;
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, a), 0);
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c), "triangle violated");
        // Bounded by the sum of half-dimensions.
        let bound: usize = t.dims.iter().map(|&d| d / 2).sum();
        prop_assert!(t.hops(a, b) <= bound);
    }

    /// The 6-D mapping is a bijection onto distinct coordinates.
    #[test]
    fn six_d_mapping_injective(t in torus()) {
        let mut seen = std::collections::HashSet::new();
        for id in 0..t.len() {
            prop_assert!(seen.insert(t.to_tofu6d(id)), "collision at {id}");
        }
    }

    /// Scheduler sanity: makespan is at least the critical path of any
    /// dependency chain, and at least the total occupancy of any resource.
    #[test]
    fn scheduler_lower_bounds(
        chain in proptest::collection::vec(1u64..1000, 1..12),
        parallel in proptest::collection::vec(1u64..1000, 1..12),
    ) {
        let mut g = JobGraph::new();
        // One dependency chain.
        let mut prev = None;
        for &d in &chain {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.job(&deps, None, d, 0));
        }
        // One contended resource.
        let r = g.resource();
        for &d in &parallel {
            g.job(&[], Some(r), d, 0);
        }
        let s = g.run();
        let chain_sum: u64 = chain.iter().sum();
        let res_sum: u64 = parallel.iter().sum();
        prop_assert!(s.makespan >= chain_sum, "{} < {chain_sum}", s.makespan);
        prop_assert!(s.makespan >= res_sum, "{} < {res_sum}", s.makespan);
        // And no larger than doing absolutely everything serially.
        prop_assert!(s.makespan <= chain_sum + res_sum);
    }

    /// Jobs never start before their release or their dependencies finish.
    #[test]
    fn scheduler_respects_dependencies(
        durations in proptest::collection::vec(1u64..500, 2..10),
    ) {
        let mut g = JobGraph::new();
        let r = g.resource();
        let mut ids = Vec::new();
        let mut prev: Option<fugaku::event::JobId> = None;
        for (i, &d) in durations.iter().enumerate() {
            let deps: Vec<_> = if i % 2 == 0 { prev.into_iter().collect() } else { vec![] };
            let id = g.job(&deps, Some(r), d, (i as u64 % 3) * 10);
            if i % 2 == 0 {
                prev = Some(id);
            }
            ids.push(id);
        }
        let s = g.run();
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 && i >= 2 {
                if let Some(dep) = ids.get(i - 2) {
                    prop_assert!(s.start[id.0] >= s.finish[dep.0] || i < 2);
                }
            }
            prop_assert!(s.finish[id.0] >= s.start[id.0] + durations[i]);
        }
    }

    /// LRU cache: hits + misses equals accesses; a working set within
    /// capacity eventually stops missing.
    #[test]
    fn cache_accounting(capacity in 1usize..64, wset in 1usize..64, rounds in 1usize..6) {
        let mut cache = NicCache::new(capacity, 100);
        let mut total = 0u64;
        for _ in 0..rounds {
            for e in 0..wset as u64 {
                cache.access(e);
                total += 1;
            }
        }
        let (hits, misses) = cache.stats();
        prop_assert_eq!(hits + misses, total);
        prop_assert!(misses >= (wset.min(capacity) as u64).min(total));
        if wset <= capacity {
            // After warmup every access hits.
            prop_assert_eq!(misses, wset as u64);
        }
    }
}
