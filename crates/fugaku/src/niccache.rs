//! NIC hardware-cache model: connection state and registered memory regions.
//!
//! RDMA NICs keep connection descriptors and memory-region translations in a
//! small on-chip cache. When an application registers one buffer pair per
//! neighbour (the non-memory-pool baseline), the working set overflows the
//! cache as the neighbour count grows; every message then pays a main-memory
//! refill. The paper's memory pool registers a single large region, keeping
//! the working set at one entry — communication time stays linear in message
//! count (Fig. 8).

use std::collections::BTreeMap;

/// An LRU cache of NIC entries (connections or memory regions).
#[derive(Clone, Debug)]
pub struct NicCache {
    /// Capacity in entries.
    pub capacity: usize,
    /// Extra latency of a miss (main-memory refill), ns.
    pub miss_penalty_ns: u64,
    // entry -> last-use stamp
    stamps: BTreeMap<u64, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl NicCache {
    /// A cache with `capacity` entries and the given refill penalty.
    pub fn new(capacity: usize, miss_penalty_ns: u64) -> Self {
        assert!(capacity > 0);
        NicCache {
            capacity,
            miss_penalty_ns,
            stamps: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Fugaku-flavoured defaults: enough on-chip entries for a few dozen
    /// registration pairs, ~1 µs refill from main memory. Capacity 80 puts
    /// the overflow knee just past 40 neighbours when each neighbour
    /// registers a send + receive buffer — Fig. 8's non-pool curve departs
    /// at 44, the first sweep point beyond that.
    pub fn fugaku_default() -> Self {
        NicCache::new(80, 1000)
    }

    /// Touch `entry`; returns the added latency (0 on hit, the refill
    /// penalty on miss) and updates LRU state.
    pub fn access(&mut self, entry: u64) -> u64 {
        self.clock += 1;
        let hit = self.stamps.contains_key(&entry);
        self.stamps.insert(entry, self.clock);
        if hit {
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            if self.stamps.len() > self.capacity {
                // Evict the least recently used entry.
                if let Some((&lru, _)) = self.stamps.iter().min_by_key(|(_, &stamp)| stamp) {
                    self.stamps.remove(&lru);
                }
            }
            self.miss_penalty_ns
        }
    }

    /// Invalidate `entry` (e.g. a registration torn down by a fault):
    /// returns whether it was resident. The next access to it misses.
    pub fn evict(&mut self, entry: u64) -> bool {
        self.stamps.remove(&entry).is_some()
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Forget everything (e.g. between experiment repetitions).
    pub fn reset(&mut self) {
        self.stamps.clear();
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = NicCache::new(8, 1000);
        for e in 0..8u64 {
            assert_eq!(c.access(e), 1000, "cold miss");
        }
        for _ in 0..10 {
            for e in 0..8u64 {
                assert_eq!(c.access(e), 0, "warm hit");
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(misses, 8);
        assert_eq!(hits, 80);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_under_round_robin() {
        let mut c = NicCache::new(8, 1000);
        // Cyclic access to 9 entries with LRU capacity 8: every access
        // misses (the classic LRU worst case).
        for _ in 0..5 {
            for e in 0..9u64 {
                c.access(e);
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0, "LRU thrashes on cyclic overflow");
        assert_eq!(misses, 45);
    }

    #[test]
    fn single_entry_pool_never_misses_after_first() {
        let mut c = NicCache::fugaku_default();
        let mut extra = 0;
        for _ in 0..1000 {
            extra += c.access(42);
        }
        assert_eq!(extra, c.miss_penalty_ns, "only the cold miss pays");
    }

    #[test]
    fn evicted_entry_misses_again_without_perturbing_others() {
        let mut c = NicCache::new(8, 1000);
        c.access(1);
        c.access(2);
        assert!(c.evict(1), "entry 1 was resident");
        assert!(!c.evict(1), "already gone");
        assert_eq!(c.access(2), 0, "untouched entry still hits");
        assert_eq!(c.access(1), 1000, "evicted entry pays a refill");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = NicCache::new(4, 100);
        c.access(1);
        c.reset();
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.access(1), 100, "cold again after reset");
    }
}
