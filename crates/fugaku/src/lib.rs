//! # fugaku — the machine substrate
//!
//! A performance model of the Fugaku supercomputer, built so the paper's
//! communication and scaling experiments can run without the machine:
//!
//! * [`a64fx`] — the A64FX SoC: 4 CMGs × 12 compute cores, SVE-512 FLOP
//!   rates, HBM2 bandwidth, and the ring-bus NoC connecting CMGs and the
//!   TofuD controller;
//! * [`tofu`] — the TofuD interconnect: 6-D torus coordinates (12-node
//!   cells), the logical 3-D torus mapping used by domain-decomposition
//!   codes, hop counting, link parameters;
//! * [`tni`] — the six Tofu Network Interfaces (RDMA engines) per node and
//!   their serialization behaviour;
//! * [`niccache`] — the NIC's connection/memory-region cache with LRU
//!   eviction and main-memory-refill penalty (the mechanism behind the
//!   paper's RDMA memory pool, Fig. 8);
//! * [`utofu`] — software overheads of the uTofu one-sided API vs MPI;
//! * [`collectives`] — allreduce/barrier time models (the per-step thermo
//!   reduction LAMMPS issues);
//! * [`event`] — a deterministic discrete-event / list-scheduling engine:
//!   jobs with dependencies compete for resources (TNIs, NoC ports, links),
//!   producing completion times for arbitrary communication schedules;
//! * [`machine`] — a bundled [`machine::MachineConfig`] with Fugaku defaults
//!   used by every experiment.
//!
//! All times are nanoseconds (`u64`); all sizes bytes. Constants come from
//! published Fugaku/A64FX/TofuD specifications and the paper's own
//! measurements (e.g. 0.49 µs put latency, 4 ms TF session overhead).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod a64fx;
pub mod collectives;
pub mod event;
pub mod machine;
pub mod niccache;
pub mod tni;
pub mod tofu;
pub mod utofu;

pub use event::{JobGraph, JobId, ResourceId};
pub use machine::MachineConfig;
