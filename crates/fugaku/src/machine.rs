//! The assembled machine configuration used by every experiment.

use serde::{Deserialize, Serialize};

use crate::a64fx::A64fx;
use crate::tni::TniParams;
use crate::tofu::{TofuParams, Torus3d};

/// Everything the communication and scaling models need to know about the
/// machine, with Fugaku defaults.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The SoC model.
    pub chip: A64fx,
    /// Interconnect link/latency parameters.
    pub tofu: TofuParams,
    /// RDMA engine software/DMA costs.
    pub tni: TniParams,
    /// NIC cache capacity (entries) and miss penalty (ns).
    pub nic_cache_entries: usize,
    /// NIC cache refill penalty, ns.
    pub nic_cache_miss_ns: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            chip: A64fx::default(),
            tofu: TofuParams::default(),
            tni: TniParams::default(),
            nic_cache_entries: 80,
            nic_cache_miss_ns: 1000,
        }
    }
}

impl MachineConfig {
    /// A Frontier-flavoured node (paper §V: "Infinity Fabric + 4x
    /// Slingshots"): 4 NICs at 25 GB/s, a fatter intra-node fabric, higher
    /// per-message latency than TofuD. Used by the portability study.
    pub fn frontier_like() -> Self {
        let mut m = MachineConfig::default();
        m.tofu.tnis_per_node = 4;
        m.tofu.link_bw = 25.0;
        m.tofu.base_latency_ns = 1_500.0;
        m.tofu.hop_latency_ns = 150.0;
        m.chip.noc_bw = 300.0; // Infinity-Fabric-class GPU P2P
        m.chip.noc_latency_ns = 500.0;
        m.chip.sync_latency_ns = 1_500.0;
        m
    }

    /// A new-Sunway-flavoured node (paper §V: "NoC + 2x RDMA NICs").
    pub fn sunway_like() -> Self {
        let mut m = MachineConfig::default();
        m.tofu.tnis_per_node = 2;
        m.tofu.link_bw = 14.0;
        m.tofu.base_latency_ns = 900.0;
        m.chip.noc_bw = 90.0;
        m.chip.sync_latency_ns = 1_000.0;
        m
    }

    /// A logical 3-D torus of `dims` nodes on this machine.
    pub fn torus(&self, dims: [usize; 3]) -> Torus3d {
        Torus3d::new(dims)
    }

    /// The node topologies used in the paper's strong-scaling runs
    /// (768 → 12,000 nodes, §IV-E).
    pub fn paper_scaling_topologies() -> Vec<[usize; 3]> {
        vec![[8, 12, 8], [12, 15, 12], [16, 18, 16], [16, 24, 16], [20, 30, 20]]
    }

    /// The 96-node topology used by the step-by-step experiments (Figs 7/9).
    pub fn paper_96_node_topology() -> [usize; 3] {
        [4, 6, 4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topologies_have_the_right_node_counts() {
        let sizes: Vec<usize> =
            MachineConfig::paper_scaling_topologies().iter().map(|d| d.iter().product()).collect();
        assert_eq!(sizes, vec![768, 2160, 4608, 6144, 12000]);
        let n96: usize = MachineConfig::paper_96_node_topology().iter().product();
        assert_eq!(n96, 96);
    }

    #[test]
    fn default_round_trips_through_serde() {
        let m = MachineConfig::default();
        let s = serde_json::to_string(&m).unwrap();
        let back: MachineConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.nic_cache_entries, m.nic_cache_entries);
        assert!((back.tofu.link_bw - m.tofu.link_bw).abs() < 1e-12);
    }
}
