//! Collective-operation time models on the TofuD torus.
//!
//! LAMMPS performs a global allreduce of thermodynamic scalars (potential
//! energy, virial, kinetic energy) every step, and a barrier at every
//! exchange. At 12,000 nodes these collectives are a visible slice of a
//! sub-millisecond step, so the scaling model charges them explicitly.
//!
//! Models are the classic ones: recursive doubling for small-payload
//! allreduce (`⌈log₂ P⌉` rounds of one message each) and a tree barrier.
//! Tofu's hardware barrier support makes the constants small; the software
//! path through MPI is modelled by the `CommApi` costs.

use crate::machine::MachineConfig;
use crate::tofu::Torus3d;
use crate::utofu::{ApiCosts, CommApi};

/// Time for an allreduce of `bytes` across all nodes of `torus`, ns.
///
/// Recursive doubling: `ceil(log2 P)` rounds; each round is one
/// send+receive of the full payload between nodes that are (on average)
/// a quarter of the torus apart in hop distance at the top rounds.
pub fn allreduce_ns(machine: &MachineConfig, torus: &Torus3d, bytes: usize, api: CommApi) -> u64 {
    let p = torus.len().max(1);
    if p == 1 {
        return 0;
    }
    let rounds = (usize::BITS - (p - 1).leading_zeros()) as u64;
    let costs = ApiCosts::of(api);
    // Mean hop distance grows with the doubling distance; use the average
    // over rounds ≈ a quarter of the torus diameter.
    let diameter: usize = torus.dims.iter().map(|&d| d / 2).sum();
    let mean_hops = (diameter / 4).max(1);
    let per_round = costs.send_overhead_ns
        + costs.recv_overhead_ns
        + machine.tni.engine_overhead_ns
        + machine.tofu.wire_time_ns(mean_hops, bytes) as u64;
    rounds * per_round
}

/// Time for a full-system barrier, ns (an allreduce of zero payload; Tofu's
/// hardware-assisted barrier halves the software cost).
pub fn barrier_ns(machine: &MachineConfig, torus: &Torus3d, api: CommApi) -> u64 {
    allreduce_ns(machine, torus, 0, api) / 2
}

/// The per-step thermo allreduce LAMMPS issues: a handful of f64 scalars
/// (energy, virial tensor, kinetic energy ⇒ ~96 bytes).
pub fn thermo_allreduce_ns(machine: &MachineConfig, torus: &Torus3d, api: CommApi) -> u64 {
    allreduce_ns(machine, torus, 96, api)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_is_free() {
        let m = MachineConfig::default();
        let t = Torus3d::new([1, 1, 1]);
        assert_eq!(allreduce_ns(&m, &t, 1024, CommApi::Mpi), 0);
        assert_eq!(barrier_ns(&m, &t, CommApi::Mpi), 0);
    }

    #[test]
    fn allreduce_grows_logarithmically() {
        let m = MachineConfig::default();
        let t96 = Torus3d::new([4, 6, 4]);
        let t12000 = Torus3d::new([20, 30, 20]);
        let a = allreduce_ns(&m, &t96, 96, CommApi::Utofu);
        let b = allreduce_ns(&m, &t12000, 96, CommApi::Utofu);
        assert!(b > a);
        // 96 → 12,000 nodes is 125×, but log2 only grows 7 → 14 rounds;
        // the hop term grows too, so allow up to ~6× total.
        assert!((b as f64) < 6.0 * a as f64, "{b} vs {a}");
    }

    #[test]
    fn paper_scale_thermo_allreduce_is_tens_of_microseconds() {
        // At 12,000 nodes, the per-step collective must stay well under the
        // ~600 µs optimized step or the headline would be impossible.
        let m = MachineConfig::default();
        let t = Torus3d::new([20, 30, 20]);
        let ns = thermo_allreduce_ns(&m, &t, CommApi::Utofu);
        assert!(ns > 5_000 && ns < 100_000, "thermo allreduce {ns} ns");
    }

    #[test]
    fn utofu_collectives_beat_mpi() {
        let m = MachineConfig::default();
        let t = Torus3d::new([8, 12, 8]);
        assert!(
            thermo_allreduce_ns(&m, &t, CommApi::Utofu) < thermo_allreduce_ns(&m, &t, CommApi::Mpi)
        );
        assert!(barrier_ns(&m, &t, CommApi::Utofu) <= allreduce_ns(&m, &t, 0, CommApi::Utofu));
    }
}
