//! Tofu Network Interfaces — the six RDMA engines of a node.
//!
//! Each TNI sends/receives one packet stream at a time; a node reaches full
//! injection bandwidth only when all six are driven concurrently. The
//! hardware is not thread-safe within an MPI rank (paper §III-A2), so the
//! paper binds one communication thread per TNI — 6 threads when one rank
//! leads, 24 when all four ranks lead (6 TNI resources shared node-wide, but
//! copy work spread over more threads).

use serde::{Deserialize, Serialize};

/// Number of RDMA engines per node.
pub const TNIS_PER_NODE: usize = 6;

/// How TNIs are driven by software.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TniDriving {
    /// One communication thread drives all TNIs round-robin, serially (the
    /// `sg-` single-thread configurations in Fig. 7).
    SingleThread,
    /// One dedicated thread per TNI: all engines pump concurrently.
    ThreadPerTni,
}

/// Static TNI send-side costs.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TniParams {
    /// CPU time to post one descriptor to a TNI, ns.
    pub post_overhead_ns: u64,
    /// TNI occupancy per message beyond payload streaming (DMA setup), ns.
    pub engine_overhead_ns: u64,
}

impl Default for TniParams {
    fn default() -> Self {
        TniParams { post_overhead_ns: 100, engine_overhead_ns: 150 }
    }
}

/// Round-robin assignment of `n_messages` onto TNIs, returning for each
/// message the engine index — the policy the paper uses ("the messages to
/// neighbors are sent in turn on these TNIs").
pub fn round_robin_assignment(n_messages: usize, n_tnis: usize) -> Vec<usize> {
    assert!(n_tnis > 0);
    (0..n_messages).map(|m| m % n_tnis).collect()
}

/// Round-robin assignment that routes around unavailable engines: messages
/// are spread in turn over the TNIs *not* listed in `stalled`. Used by the
/// fault layer to model a wedged engine — the node keeps communicating on
/// the remaining five at reduced injection bandwidth.
///
/// # Panics
/// If every TNI is stalled (the node would be unreachable).
pub fn round_robin_assignment_avoiding(
    n_messages: usize,
    n_tnis: usize,
    stalled: &[usize],
) -> Vec<usize> {
    assert!(n_tnis > 0);
    let healthy: Vec<usize> = (0..n_tnis).filter(|t| !stalled.contains(t)).collect();
    assert!(!healthy.is_empty(), "all {n_tnis} TNIs stalled: node unreachable");
    (0..n_messages).map(|m| healthy[m % healthy.len()]).collect()
}

/// Per-engine message counts of an assignment (utilization summary): entry
/// `t` is how many messages landed on TNI `t`. Out-of-range entries are
/// ignored.
pub fn assignment_counts(assignment: &[usize], n_tnis: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_tnis];
    for &t in assignment {
        if t < n_tnis {
            counts[t] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances() {
        let a = round_robin_assignment(13, 6);
        let mut counts = [0usize; 6];
        for &t in &a {
            counts[t] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 13);
        assert!(counts.iter().all(|&c| c == 2 || c == 3));
    }

    #[test]
    fn avoiding_assignment_skips_stalled_engines_and_stays_balanced() {
        let a = round_robin_assignment_avoiding(20, 6, &[2, 5]);
        assert!(a.iter().all(|&t| t != 2 && t != 5), "stalled TNIs must carry nothing");
        let mut counts = [0usize; 6];
        for &t in &a {
            counts[t] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 20);
        assert_eq!(counts[2] + counts[5], 0);
        assert!([0, 1, 3, 4].iter().all(|&t| counts[t] == 5), "{counts:?}");
    }

    #[test]
    fn avoiding_with_nothing_stalled_is_plain_round_robin() {
        assert_eq!(round_robin_assignment_avoiding(13, 6, &[]), round_robin_assignment(13, 6));
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn all_tnis_stalled_is_rejected() {
        round_robin_assignment_avoiding(1, 2, &[0, 1]);
    }

    #[test]
    fn assignment_counts_summarize_utilization() {
        let a = round_robin_assignment_avoiding(20, 6, &[2, 5]);
        let counts = assignment_counts(&a, 6);
        assert_eq!(counts.iter().sum::<usize>(), 20);
        assert_eq!(counts[2] + counts[5], 0);
        assert_eq!(assignment_counts(&[0, 9], 2), vec![1, 0], "out-of-range ignored");
    }

    #[test]
    fn defaults_are_sub_microsecond() {
        let p = TniParams::default();
        assert!(p.post_overhead_ns < 1000 && p.engine_overhead_ns < 1000);
    }
}
