//! The TofuD 6-D torus/mesh interconnect (paper Fig. 2b).
//!
//! Physically, Tofu coordinates are `(x, y, z, a, b, c)` where `(a, b, c)`
//! with shape `(2, 3, 2)` addresses the 12 nodes inside a cell and
//! `(x, y, z)` addresses the cell. Domain-decomposition applications use the
//! *logical 3-D torus* view `(X, Y, Z) = (2x + a', 3y + b, 2z + c')` that
//! the Tofu runtime exposes, so routing distance for our purposes is the
//! Manhattan hop count on that logical torus. Both views are implemented;
//! tests pin their consistency.

use serde::{Deserialize, Serialize};

/// Cell dimensions of the (a, b, c) axes.
pub const CELL_SHAPE: [usize; 3] = [2, 3, 2];
/// Nodes per cell.
pub const NODES_PER_CELL: usize = 12;

/// TofuD link and controller parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TofuParams {
    /// One-way link bandwidth per port, bytes/ns (TofuD: 6.8 GB/s).
    pub link_bw: f64,
    /// Per-hop switching latency, ns.
    pub hop_latency_ns: f64,
    /// Base end-to-end put latency (0 hops), ns. Paper: the minimum
    /// point-to-point latency is 0.49 µs; we split it into base + hops.
    pub base_latency_ns: f64,
    /// RDMA engines (TNIs) per node.
    pub tnis_per_node: usize,
}

impl Default for TofuParams {
    fn default() -> Self {
        TofuParams { link_bw: 6.8, hop_latency_ns: 100.0, base_latency_ns: 390.0, tnis_per_node: 6 }
    }
}

impl TofuParams {
    /// Wire time of a message: base latency + per-hop switching + payload
    /// streaming at link bandwidth.
    pub fn wire_time_ns(&self, hops: usize, bytes: usize) -> f64 {
        self.base_latency_ns + hops as f64 * self.hop_latency_ns + bytes as f64 / self.link_bw
    }
}

/// A logical 3-D torus of compute nodes (the view LAMMPS maps onto).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus3d {
    /// Grid dimensions.
    pub dims: [usize; 3],
}

impl Torus3d {
    /// A torus with the given dimensions.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "torus dims must be positive");
        Torus3d { dims }
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` for an empty torus (never constructed; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of node `id` (x fastest).
    pub fn coords(&self, id: usize) -> [usize; 3] {
        let [dx, dy, _] = self.dims;
        [id % dx, (id / dx) % dy, id / (dx * dy)]
    }

    /// Node id at (wrapped) coordinates.
    pub fn id_at(&self, c: [i64; 3]) -> usize {
        let [dx, dy, dz] = self.dims;
        let x = c[0].rem_euclid(dx as i64) as usize;
        let y = c[1].rem_euclid(dy as i64) as usize;
        let z = c[2].rem_euclid(dz as i64) as usize;
        (z * dy + y) * dx + x
    }

    /// Torus distance along one axis.
    fn axis_dist(&self, d: usize, a: usize, b: usize) -> usize {
        let n = self.dims[d];
        let diff = a.abs_diff(b);
        diff.min(n - diff)
    }

    /// Manhattan hop count between two nodes on the torus — the dimension-
    /// ordered routing distance TofuD uses on its logical view.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..3).map(|d| self.axis_dist(d, ca[d], cb[d])).sum()
    }

    /// Physical 6-D Tofu coordinates `(x, y, z, a, b, c)` of a logical node:
    /// the logical X axis folds into (cell x, intra-cell a), Y into
    /// (y, b), Z into (z, c).
    pub fn to_tofu6d(&self, id: usize) -> [usize; 6] {
        let [lx, ly, lz] = self.coords(id);
        [
            lx / CELL_SHAPE[0],
            ly / CELL_SHAPE[1],
            lz / CELL_SHAPE[2],
            lx % CELL_SHAPE[0],
            ly % CELL_SHAPE[1],
            lz % CELL_SHAPE[2],
        ]
    }

    /// Cell index (x, y, z of the cell grid) of a logical node.
    pub fn cell_of(&self, id: usize) -> [usize; 3] {
        let t = self.to_tofu6d(id);
        [t[0], t[1], t[2]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_distance_wraps() {
        let t = Torus3d::new([8, 12, 8]);
        let a = t.id_at([0, 0, 0]);
        let b = t.id_at([7, 0, 0]);
        assert_eq!(t.hops(a, b), 1, "wraparound neighbours are 1 hop");
        let c = t.id_at([4, 6, 4]);
        assert_eq!(t.hops(a, c), 4 + 6 + 4);
        assert_eq!(t.hops(a, a), 0);
    }

    #[test]
    fn hops_are_symmetric() {
        let t = Torus3d::new([5, 7, 3]);
        for a in [0, 17, 52, 104] {
            for b in [3, 29, 77] {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn coords_round_trip() {
        let t = Torus3d::new([4, 6, 4]);
        for id in 0..t.len() {
            let c = t.coords(id);
            assert_eq!(t.id_at([c[0] as i64, c[1] as i64, c[2] as i64]), id);
        }
    }

    #[test]
    fn cells_hold_twelve_nodes() {
        let t = Torus3d::new([4, 6, 4]);
        let mut per_cell = std::collections::HashMap::new();
        for id in 0..t.len() {
            *per_cell.entry(t.cell_of(id)).or_insert(0usize) += 1;
        }
        assert!(per_cell.values().all(|&n| n == NODES_PER_CELL));
        // 96 nodes = 8 cells.
        assert_eq!(per_cell.len(), 8);
    }

    #[test]
    fn paper_minimum_latency() {
        let p = TofuParams::default();
        // Minimum p2p latency (1 hop, 0 bytes) matches the paper's 0.49 µs.
        assert!((p.wire_time_ns(1, 0) - 490.0).abs() < 1e-9);
        // Payload streams at link bandwidth.
        let t = p.wire_time_ns(1, 68_000);
        assert!((t - (490.0 + 10_000.0)).abs() < 1e-6);
    }

    #[test]
    fn six_d_mapping_is_injective() {
        let t = Torus3d::new([4, 6, 4]);
        let mut seen = std::collections::HashSet::new();
        for id in 0..t.len() {
            assert!(seen.insert(t.to_tofu6d(id)), "duplicate 6-D coordinate");
        }
    }
}
