//! Software overheads of the communication APIs.
//!
//! The paper measures that driving the TofuD through the low-level uTofu
//! one-sided interface "can reduce 15% to 27% overhead compared to the MPI
//! API": MPI adds tag matching, request objects and progress-engine costs on
//! both sides, where a uTofu put is a descriptor write plus a completion
//! poll. These constants parameterize the per-message software cost used by
//! the communication schedules.

use serde::{Deserialize, Serialize};

/// Which messaging API issues a transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommApi {
    /// Two-sided MPI send/recv (the LAMMPS baseline).
    Mpi,
    /// One-sided uTofu RDMA put into a pre-registered buffer.
    Utofu,
}

/// Per-message software costs of an API.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ApiCosts {
    /// Sender CPU time per message, ns.
    pub send_overhead_ns: u64,
    /// Receiver CPU time per message (matching/polling/unpack trigger), ns.
    pub recv_overhead_ns: u64,
    /// Extra per-message cost when the payload must be packed into a
    /// send buffer first (MPI without pre-registered layouts), ns per byte.
    pub pack_ns_per_byte: f64,
}

impl ApiCosts {
    /// Costs for the given API, Fugaku-calibrated.
    ///
    /// Chosen so uTofu saves 15–27% of per-message software time vs MPI at
    /// small-to-medium halo sizes (the paper's measured band).
    pub fn of(api: CommApi) -> ApiCosts {
        match api {
            CommApi::Mpi => ApiCosts { send_overhead_ns: 400, recv_overhead_ns: 400, pack_ns_per_byte: 0.02 },
            CommApi::Utofu => {
                ApiCosts { send_overhead_ns: 120, recv_overhead_ns: 100, pack_ns_per_byte: 0.0 }
            }
        }
    }

    /// Total software time for one message of `bytes` payload, ns.
    pub fn message_sw_ns(&self, bytes: usize) -> u64 {
        self.send_overhead_ns + self.recv_overhead_ns + (self.pack_ns_per_byte * bytes as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utofu_message_software_cost_is_well_below_mpi() {
        // Per-message software time: a uTofu put is a descriptor write plus
        // a completion poll, far cheaper than MPI matching. (The paper's
        // quoted 15–27% saving is at the *pattern* level, where wire and
        // engine time dilute the software share — asserted in the 3-stage
        // pattern tests of the comm crate.)
        for bytes in [256usize, 1024, 4096, 16384] {
            let mpi = ApiCosts::of(CommApi::Mpi).message_sw_ns(bytes) as f64;
            let utofu = ApiCosts::of(CommApi::Utofu).message_sw_ns(bytes) as f64;
            let saving = 1.0 - utofu / mpi;
            assert!((0.30..=0.85).contains(&saving), "saving {saving:.3} at {bytes} B");
        }
    }

    #[test]
    fn utofu_has_no_pack_cost() {
        let u = ApiCosts::of(CommApi::Utofu);
        assert_eq!(u.message_sw_ns(0), u.message_sw_ns(1 << 20));
    }
}
