//! The A64FX SoC model: CMG layout, FLOP rates, memory system, and the
//! ring-bus network-on-chip connecting the four CMGs and the TofuD
//! controller (paper Fig. 2a).

use serde::{Deserialize, Serialize};

/// Number of Core Memory Groups (NUMA domains) per chip.
pub const CMGS: usize = 4;
/// Compute cores per CMG (one more core per CMG is reserved for OS/IO).
pub const CORES_PER_CMG: usize = 12;
/// Compute cores per chip.
pub const COMPUTE_CORES: usize = CMGS * CORES_PER_CMG;

/// A64FX chip parameters (all rates in per-nanosecond units).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct A64fx {
    /// Core clock, GHz (= cycles per ns). Fugaku runs at 2.2 GHz in boost.
    pub clock_ghz: f64,
    /// Double-precision FLOPs per core per cycle (2 pipes × 8 lanes × FMA).
    pub dp_flops_per_cycle: f64,
    /// HBM2 bandwidth per CMG, bytes/ns (256 GB/s = 256 B/ns).
    pub hbm_bw_per_cmg: f64,
    /// Ring-bus (NoC) bandwidth between CMGs, bytes/ns.
    pub noc_bw: f64,
    /// Base latency of a cross-CMG cacheline transfer, ns.
    pub noc_latency_ns: f64,
    /// Latency of an intra-node synchronization (flag via shared L2/memory), ns.
    pub sync_latency_ns: f64,
    /// Achievable fraction of peak GEMM FLOPs for a well-blocked kernel.
    pub gemm_efficiency: f64,
}

impl Default for A64fx {
    fn default() -> Self {
        A64fx {
            clock_ghz: 2.2,
            dp_flops_per_cycle: 32.0,
            hbm_bw_per_cmg: 256.0,
            noc_bw: 115.0,
            noc_latency_ns: 120.0,
            sync_latency_ns: 800.0,
            gemm_efficiency: 0.8,
        }
    }
}

impl A64fx {
    /// Peak double-precision GFLOP/s per core.
    pub fn dp_gflops_per_core(&self) -> f64 {
        self.clock_ghz * self.dp_flops_per_cycle
    }

    /// Peak double-precision TFLOP/s per chip (Fugaku quotes 3.38 TFLOPS at
    /// 2.2 GHz).
    pub fn dp_tflops_per_chip(&self) -> f64 {
        self.dp_gflops_per_core() * COMPUTE_CORES as f64 / 1000.0
    }

    /// Time for one core to execute `flops` double-precision FLOPs at the
    /// given efficiency, ns.
    pub fn compute_time_ns(&self, flops: f64, efficiency: f64) -> f64 {
        flops / (self.dp_gflops_per_core() * efficiency.max(1e-6))
    }

    /// Cross-CMG memory copy time for `bytes`, ns: NoC latency + streaming.
    ///
    /// `concurrent_streams` models ring-bus sharing: the copies launched by
    /// several CMGs at once divide the bus.
    pub fn cross_numa_copy_ns(&self, bytes: usize, concurrent_streams: usize) -> f64 {
        let share = self.noc_bw / concurrent_streams.max(1) as f64;
        self.noc_latency_ns + bytes as f64 / share
    }

    /// Ring-bus hop distance between CMG `a` and the TofuD controller.
    ///
    /// CMGs 2 and 3 sit closer to the NIC on the ring (paper §III-A2:
    /// "NUMA 2 and NUMA 3 situated closer to the NIC"); the extra hops cost
    /// additional NoC latency for CMGs 0 and 1.
    pub fn cmg_to_nic_hops(&self, cmg: usize) -> usize {
        match cmg {
            2 | 3 => 1,
            0 | 1 => 2,
            _ => panic!("A64FX has 4 CMGs, got {cmg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_published_spec() {
        let chip = A64fx::default();
        // 2.2 GHz × 32 flops × 48 cores = 3.379 TFLOPS (Fugaku spec: 3.38).
        assert!((chip.dp_tflops_per_chip() - 3.3792).abs() < 1e-9);
        assert!((chip.dp_gflops_per_core() - 70.4).abs() < 1e-9);
    }

    #[test]
    fn compute_time_scales_inversely_with_efficiency() {
        let chip = A64fx::default();
        let fast = chip.compute_time_ns(1.0e6, 0.8);
        let slow = chip.compute_time_ns(1.0e6, 0.4);
        assert!((slow / fast - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cross_numa_copy_has_latency_floor_and_bandwidth_slope() {
        let chip = A64fx::default();
        let tiny = chip.cross_numa_copy_ns(64, 1);
        assert!(tiny >= chip.noc_latency_ns);
        let big1 = chip.cross_numa_copy_ns(1 << 20, 1);
        let big4 = chip.cross_numa_copy_ns(1 << 20, 4);
        assert!(big4 > big1, "bus sharing must slow concurrent streams");
        // 1 MiB at 115 B/ns ≈ 9118 ns dominated by bandwidth.
        assert!((big1 - chip.noc_latency_ns - (1 << 20) as f64 / 115.0).abs() < 1e-6);
    }

    #[test]
    fn nic_proximity_matches_paper() {
        let chip = A64fx::default();
        assert!(chip.cmg_to_nic_hops(2) < chip.cmg_to_nic_hops(0));
        assert_eq!(chip.cmg_to_nic_hops(3), 1);
    }

    #[test]
    #[should_panic(expected = "4 CMGs")]
    fn bad_cmg_rejected() {
        A64fx::default().cmg_to_nic_hops(4);
    }
}
