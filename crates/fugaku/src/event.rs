//! Deterministic discrete-event engine (list scheduling over resources).
//!
//! Communication schedules are expressed as a DAG of [`Job`]s. A job becomes
//! *ready* when all of its dependencies have finished; it then queues on its
//! resource (a TNI, a NoC port, a link — anything serialized) and occupies it
//! for `busy` nanoseconds; `tail` nanoseconds more elapse before dependents
//! may start (wire latency that does not occupy the resource). Jobs without
//! a resource start the moment they are ready.
//!
//! Ties are broken by ready time, then insertion order, making runs fully
//! deterministic — a property the comm-scheme comparisons rely on.

/// Nanoseconds.
pub type Time = u64;

/// Handle to a job in a [`JobGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(pub usize);

/// Handle to a serialized resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// One schedulable unit of work.
#[derive(Clone, Debug)]
struct Job {
    deps: Vec<JobId>,
    resource: Option<ResourceId>,
    busy: Time,
    tail: Time,
    /// Earliest admissible start (used for externally imposed offsets).
    release: Time,
}

/// A dependency graph of jobs over serialized resources.
#[derive(Clone, Debug, Default)]
pub struct JobGraph {
    jobs: Vec<Job>,
    resources: usize,
}

/// Completion report of a simulated schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Finish time (including tail) per job.
    pub finish: Vec<Time>,
    /// Start time per job.
    pub start: Vec<Time>,
    /// Overall makespan.
    pub makespan: Time,
}

impl Schedule {
    /// Render an ASCII Gantt chart of the first `max_jobs` jobs, `width`
    /// characters wide — a debugging view of where a communication schedule
    /// spends its time.
    pub fn gantt(&self, labels: &[String], width: usize, max_jobs: usize) -> String {
        let span = self.makespan.max(1) as f64;
        let mut out = String::new();
        let n = self.start.len().min(max_jobs);
        let label_w = labels.iter().take(n).map(String::len).max().unwrap_or(3).max(3);
        for i in 0..n {
            let s = ((self.start[i] as f64 / span) * width as f64).floor() as usize;
            let f = (((self.finish[i] as f64) / span) * width as f64).ceil() as usize;
            let f = f.clamp(s + 1, width);
            let label = labels.get(i).map(String::as_str).unwrap_or("?");
            out.push_str(&format!("{label:>label_w$} |"));
            out.push_str(&" ".repeat(s));
            out.push_str(&"#".repeat(f - s));
            out.push_str(&" ".repeat(width - f));
            out.push_str(&format!("| {} ns
", self.finish[i]));
        }
        out.push_str(&format!("{:>label_w$}  makespan: {} ns
", "", self.makespan));
        out
    }
}

impl JobGraph {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph::default()
    }

    /// Allocate a serialized resource.
    pub fn resource(&mut self) -> ResourceId {
        self.resources += 1;
        ResourceId(self.resources - 1)
    }

    /// Allocate `n` resources (e.g. the 6 TNIs of a node).
    pub fn resources(&mut self, n: usize) -> Vec<ResourceId> {
        (0..n).map(|_| self.resource()).collect()
    }

    /// Add a job.
    ///
    /// * `deps` — jobs that must finish first;
    /// * `resource` — serialized resource it occupies (or `None`);
    /// * `busy` — occupancy, ns;
    /// * `tail` — extra delay after occupancy before dependents can start.
    ///
    /// # Panics
    /// If a dependency or resource id is out of range.
    pub fn job(&mut self, deps: &[JobId], resource: Option<ResourceId>, busy: Time, tail: Time) -> JobId {
        for d in deps {
            assert!(d.0 < self.jobs.len(), "dependency on a future job");
        }
        if let Some(r) = resource {
            assert!(r.0 < self.resources, "unknown resource {r:?}");
        }
        self.jobs.push(Job { deps: deps.to_vec(), resource, busy, tail, release: 0 });
        JobId(self.jobs.len() - 1)
    }

    /// Occupy `resource` for `busy` ns starting at time 0 — a convenience
    /// for modelling a wedged component (e.g. a stalled TNI engine): real
    /// jobs queued on the resource cannot start until the hold releases.
    pub fn hold_resource(&mut self, resource: ResourceId, busy: Time) -> JobId {
        self.job(&[], Some(resource), busy, 0)
    }

    /// Like [`Self::job`] with an earliest-start constraint.
    pub fn job_at(
        &mut self,
        release: Time,
        deps: &[JobId],
        resource: Option<ResourceId>,
        busy: Time,
        tail: Time,
    ) -> JobId {
        let id = self.job(deps, resource, busy, tail);
        self.jobs[id.0].release = release;
        id
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no jobs were added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Run the schedule to completion.
    ///
    /// Greedy list scheduling: among ready jobs contending for a resource,
    /// the earliest-ready wins; ties go to the lower job id. Because
    /// dependencies only point backwards, a forward sweep with a per-
    /// resource priority queue is exact.
    pub fn run(&self) -> Schedule {
        let n = self.jobs.len();
        let mut ready = vec![0 as Time; n]; // time all deps finished
        let mut start = vec![0 as Time; n];
        let mut finish = vec![0 as Time; n];
        let mut resource_free = vec![0 as Time; self.resources];

        // Kahn-style processing in dependency order. Jobs are stored in
        // insertion order and deps point backwards, so index order is a
        // valid topological order; resource contention needs event order,
        // so process jobs grouped by resource in ready-time order.
        //
        // Exactness subtlety: a job inserted later but ready earlier should
        // grab the resource first. We therefore do a two-phase schedule:
        // compute ready times in topo order, then replay each resource's
        // queue in (ready, id) order. Ready times depend on finishes, which
        // depend on resource waits, so iterate to a fixed point (converges
        // fast: dependency chains are short in comm schedules).
        for _ in 0..n.max(1) {
            let mut changed = false;
            // Phase 1: ready times from current finish estimates.
            #[allow(clippy::needless_range_loop)] // i indexes jobs, ready and finish in parallel
            for i in 0..n {
                let r = self.jobs[i]
                    .deps
                    .iter()
                    .map(|d| finish[d.0])
                    .max()
                    .unwrap_or(0)
                    .max(self.jobs[i].release);
                if r != ready[i] {
                    ready[i] = r;
                    changed = true;
                }
            }
            // Phase 2: replay resources in (ready, id) order.
            resource_free.iter_mut().for_each(|t| *t = 0);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (ready[i], i));
            for &i in &order {
                let job = &self.jobs[i];
                let s = match job.resource {
                    Some(r) => {
                        let s = ready[i].max(resource_free[r.0]);
                        resource_free[r.0] = s + job.busy;
                        s
                    }
                    None => ready[i],
                };
                let f = s + job.busy + job.tail;
                if s != start[i] || f != finish[i] {
                    start[i] = s;
                    finish[i] = f;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let makespan = finish.iter().copied().max().unwrap_or(0);
        Schedule { finish, start, makespan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_of_dependencies_serializes() {
        let mut g = JobGraph::new();
        let a = g.job(&[], None, 100, 0);
        let b = g.job(&[a], None, 50, 0);
        let c = g.job(&[b], None, 25, 10);
        let s = g.run();
        assert_eq!(s.finish[a.0], 100);
        assert_eq!(s.finish[b.0], 150);
        assert_eq!(s.finish[c.0], 185);
        assert_eq!(s.makespan, 185);
    }

    #[test]
    fn independent_jobs_on_one_resource_queue_up() {
        let mut g = JobGraph::new();
        let r = g.resource();
        let a = g.job(&[], Some(r), 100, 0);
        let b = g.job(&[], Some(r), 100, 0);
        let c = g.job(&[], Some(r), 100, 0);
        let s = g.run();
        let mut finishes = [s.finish[a.0], s.finish[b.0], s.finish[c.0]];
        finishes.sort_unstable();
        assert_eq!(finishes, [100, 200, 300], "serialized occupancy");
    }

    #[test]
    fn independent_jobs_on_distinct_resources_run_in_parallel() {
        let mut g = JobGraph::new();
        let rs = g.resources(3);
        let ids: Vec<_> = rs.iter().map(|&r| g.job(&[], Some(r), 100, 0)).collect();
        let s = g.run();
        for id in ids {
            assert_eq!(s.finish[id.0], 100);
        }
        assert_eq!(s.makespan, 100);
    }

    #[test]
    fn tail_latency_does_not_hold_the_resource() {
        // Two messages through one TNI: occupancy 10, wire tail 500. The
        // second message starts pumping at t=10, not t=510.
        let mut g = JobGraph::new();
        let tni = g.resource();
        let m1 = g.job(&[], Some(tni), 10, 500);
        let m2 = g.job(&[], Some(tni), 10, 500);
        let s = g.run();
        assert_eq!(s.finish[m1.0], 510);
        assert_eq!(s.start[m2.0], 10);
        assert_eq!(s.finish[m2.0], 520);
    }

    #[test]
    fn later_inserted_but_earlier_ready_job_wins_the_resource() {
        let mut g = JobGraph::new();
        let r = g.resource();
        let gate = g.job(&[], None, 100, 0); // delays the first-inserted job
        let late = g.job(&[gate], Some(r), 50, 0);
        let early = g.job(&[], Some(r), 50, 0); // inserted later, ready at 0
        let s = g.run();
        assert_eq!(s.start[early.0], 0, "ready-first wins");
        assert_eq!(s.start[late.0], 100);
        assert_eq!(s.finish[late.0], 150);
    }

    #[test]
    fn held_resource_delays_queued_jobs() {
        let mut g = JobGraph::new();
        let tni = g.resource();
        let hold = g.hold_resource(tni, 1000);
        let m = g.job(&[], Some(tni), 10, 0);
        let free = g.resource();
        let other = g.job(&[], Some(free), 10, 0);
        let s = g.run();
        assert_eq!(s.finish[hold.0], 1000);
        assert_eq!(s.start[m.0], 1000, "queued job waits out the hold");
        assert_eq!(s.finish[other.0], 10, "other resources are unaffected");
    }

    #[test]
    fn release_time_is_respected() {
        let mut g = JobGraph::new();
        let a = g.job_at(500, &[], None, 10, 0);
        let s = g.run();
        assert_eq!(s.start[a.0], 500);
        assert_eq!(s.finish[a.0], 510);
    }

    #[test]
    #[should_panic(expected = "future job")]
    fn forward_dependency_rejected() {
        let mut g = JobGraph::new();
        let _ = g.job(&[JobId(5)], None, 1, 0);
    }

    #[test]
    fn gantt_renders_every_job_within_bounds() {
        let mut g = JobGraph::new();
        let r = g.resource();
        let a = g.job(&[], Some(r), 100, 0);
        let b = g.job(&[a], Some(r), 50, 25);
        let _ = b;
        let s = g.run();
        let labels = vec!["send".to_string(), "recv".to_string()];
        let chart = s.gantt(&labels, 40, 10);
        assert!(chart.contains("send") && chart.contains("recv"));
        assert!(chart.contains("makespan: 175 ns"));
        // Each bar line has the fixed width between the pipes.
        for line in chart.lines().filter(|l| l.contains('|')) {
            let bar = line.split('|').nth(1).unwrap();
            assert_eq!(bar.chars().count(), 40, "{line}");
        }
    }

    #[test]
    fn barrier_fan_in_fan_out() {
        // 4 workers -> barrier -> 4 workers; makespan = slowest of each wave.
        let mut g = JobGraph::new();
        let wave1: Vec<_> = (0..4).map(|i| g.job(&[], None, 100 + i * 10, 0)).collect();
        let barrier = g.job(&wave1, None, 0, 0);
        let wave2: Vec<_> = (0..4).map(|i| g.job(&[barrier], None, 50 + i, 0)).collect();
        let s = g.run();
        assert_eq!(s.finish[barrier.0], 130);
        assert_eq!(s.makespan, 130 + 53);
        let _ = wave2;
    }
}
