//! Live implementations of the recording handles (compiled with the
//! `capture` feature; see `noop.rs` for the zero-cost mirrors).
//!
//! Handles are `Arc`-shared atomic cells handed out by the registry at
//! registration time; recording is a single relaxed atomic op and never
//! allocates or locks. Only registration and snapshotting take the registry
//! mutex.

use crate::snapshot::{HistogramSnapshot, ScalarMetric, Snapshot, Unit};
use crate::trace::{chrome_trace_json, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Monotone event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value / high-water gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is higher (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    /// Inclusive upper bounds, ascending; bucket `i` counts `v <= bounds[i]`.
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
}

/// Fixed-bucket histogram. Bounds are set at registration, so recording is
/// a bounded linear scan plus one atomic increment — no allocation.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        let mut idx = inner.bounds.len();
        for (i, &b) in inner.bounds.iter().enumerate() {
            if v <= b {
                idx = i;
                break;
            }
        }
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn snapshot(&self, name: &str, unit: Unit) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            unit,
            bounds: self.0.bounds.clone(),
            counts: self.0.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<(String, Unit, Counter)>,
    gauges: Vec<(String, Unit, Gauge)>,
    histograms: Vec<(String, Unit, Histogram)>,
}

/// A value-typed registry of named metrics. Clones share the same store, so
/// a registry can be threaded through the stack like a handle; there is no
/// global state and two registries never interfere.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether recording is live (`capture` feature on). Tests use this to
    /// skip capture-dependent assertions in feature-off builds.
    pub fn is_enabled(&self) -> bool {
        true
    }

    /// Register (or fetch the existing) counter named `name`. Idempotent:
    /// the same name always yields a handle to the same cell.
    pub fn counter(&self, name: &str, unit: Unit) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, c)) = inner.counters.iter().find(|(n, _, _)| n == name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.push((name.to_string(), unit, c.clone()));
        c
    }

    /// Register (or fetch the existing) gauge named `name`.
    pub fn gauge(&self, name: &str, unit: Unit) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, g)) = inner.gauges.iter().find(|(n, _, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.push((name.to_string(), unit, g.clone()));
        g
    }

    /// Register (or fetch the existing) histogram named `name` with the
    /// given inclusive bucket bounds (ascending; an overflow bucket is
    /// appended automatically).
    pub fn histogram(&self, name: &str, unit: Unit, bounds: &[u64]) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, _, h)) = inner.histograms.iter().find(|(n, _, _)| n == name) {
            return h.clone();
        }
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be ascending");
        let h = Histogram(Arc::new(HistInner {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        }));
        inner.histograms.push((name.to_string(), unit, h.clone()));
        h
    }

    /// All metrics at this instant, sorted by name within each kind.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut s = Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, u, c)| ScalarMetric { name: n.clone(), unit: *u, value: c.get() })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, u, g)| ScalarMetric { name: n.clone(), unit: *u, value: g.get() })
                .collect(),
            histograms: inner.histograms.iter().map(|(n, u, h)| h.snapshot(n, *u)).collect(),
        };
        s.counters.sort_by(|a, b| a.name.cmp(&b.name));
        s.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        s.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        s
    }

    /// [`snapshot`](Self::snapshot) restricted to seed-reproducible metrics
    /// (wall-clock-valued ones dropped) — the golden-comparable document.
    pub fn snapshot_deterministic(&self) -> Snapshot {
        let mut s = self.snapshot();
        s.retain_deterministic();
        s
    }
}

#[derive(Debug)]
struct TraceInner {
    origin: Instant,
    events: Vec<TraceEvent>,
}

/// Shared buffer of completed spans, exported as a Chrome trace. Clones
/// share the same buffer and origin.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    inner: Arc<Mutex<TraceInner>>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuffer {
    /// Empty buffer; timestamps are measured from now.
    pub fn new() -> Self {
        TraceBuffer {
            inner: Arc::new(Mutex::new(TraceInner { origin: Instant::now(), events: Vec::new() })),
        }
    }

    /// Open a span that records itself into the buffer when dropped.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard { buf: self.clone(), name, start: Instant::now() }
    }

    /// Record an already-measured span from its wall-clock endpoints.
    pub fn push_complete(&self, name: &'static str, start: Instant, end: Instant) {
        let mut inner = self.inner.lock().unwrap();
        let ts_ns = start.saturating_duration_since(inner.origin).as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
        inner.events.push(TraceEvent { name, tid: 0, ts_ns, dur_ns });
    }

    /// Copy of all recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().events.clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the buffer as a Chrome trace-event JSON array.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(&self.inner.lock().unwrap().events)
    }
}

/// RAII span: opened by [`TraceBuffer::span`], records a complete event on
/// drop.
#[derive(Debug)]
pub struct SpanGuard {
    buf: TraceBuffer,
    name: &'static str,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.buf.push_complete(self.name, self.start, Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c.events", Unit::Count);
        c.inc();
        c.add(4);
        let g = reg.gauge("g.peak", Unit::Bytes);
        g.set_max(10);
        g.set_max(3);
        let s = reg.snapshot();
        assert_eq!(s.counter("c.events"), Some(5));
        assert_eq!(s.gauge("g.peak"), Some(10));
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("same", Unit::Count);
        let b = reg.counter("same", Unit::Count);
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("same"), Some(2));
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    fn histogram_buckets_by_inclusive_bound_with_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", Unit::Count, &[0, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.record(v);
        }
        let s = reg.snapshot();
        let hs = s.histogram("h").unwrap();
        assert_eq!(hs.counts, vec![1, 2, 2, 2]);
        assert_eq!(hs.total(), 7);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn clones_share_the_store() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shared", Unit::Count);
        let reg2 = reg.clone();
        reg2.counter("shared", Unit::Count).add(3);
        c.inc();
        assert_eq!(reg.snapshot().counter("shared"), Some(4));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last", Unit::Count);
        reg.counter("a.first", Unit::Count);
        let s = reg.snapshot();
        assert_eq!(s.counters[0].name, "a.first");
        assert_eq!(s.counters[1].name, "z.last");
    }

    #[test]
    fn spans_record_on_drop_and_nest() {
        let trace = TraceBuffer::new();
        {
            let _outer = trace.span("outer");
            let _inner = trace.span("inner");
        }
        let events = trace.events();
        assert_eq!(events.len(), 2);
        // Inner drops first, so it is recorded first and sits inside outer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        crate::trace::validate_well_nested(&events).unwrap();
        let json = trace.to_chrome_json();
        crate::schema::validate_trace_json(&json).unwrap();
    }
}
