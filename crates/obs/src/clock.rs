//! The workspace's blessed wall-clock read.
//!
//! Determinism invariant **D4** (see `DESIGN.md` and `dpmd-analyze`): code
//! on deterministic paths must never branch on wall-clock time, and every
//! wall-clock *measurement* must flow through a choke point that is easy to
//! audit. [`wall_now`] is that choke point: a direct alias of
//! [`std::time::Instant::now`] whose call sites are, by construction, the
//! only places outside `dpmd-obs` and the bench harness that read the
//! clock. Values derived from it must only ever feed:
//!
//! * [`Unit::WallNs`](crate::Unit::WallNs) metrics (excluded from
//!   deterministic snapshots),
//! * span traces (schema-validated, never golden-compared), or
//! * human-facing timing printouts.
//!
//! The static analyzer (`cargo run -p dpmd-analyze`) flags any direct
//! `Instant::now`/`SystemTime::now` outside the allowlisted crates, so new
//! timing code is funnelled here rather than re-opening ad-hoc clock reads
//! on simulation paths.

use std::time::Instant;

/// Read the monotonic wall clock. Identical to [`Instant::now`]; exists so
/// the determinism audit has one named entry point for wall time.
#[inline]
pub fn wall_now() -> Instant {
    Instant::now()
}
