//! Always-on per-step phase storage.
//!
//! [`StepSeries`] is the single source of truth for per-step wall-clock
//! phase breakdowns; `minimd`'s `StepTiming` is a *view* over the latest
//! entry rather than a parallel mechanism. It is compiled regardless of the
//! `capture` feature because the CLI's `--timing` table predates the
//! observability layer and must keep working in default builds.

/// Wall-clock phase breakdown of one MD step, in seconds. The force phases
/// (`descriptor_s` … `reduction_s`) are sub-phases of `force_s` and sum to
/// at most `force_s`; analytic potentials leave them zero.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepPhases {
    /// Step index (0-based).
    pub step: u64,
    /// Neighbor-list rebuild time (zero on cadence-skipped steps).
    pub neighbor_s: f64,
    /// Total force evaluation time.
    pub force_s: f64,
    /// Environment-matrix construction (deep potential only).
    pub descriptor_s: f64,
    /// Embedding-net forward+grad (deep potential only).
    pub embedding_s: f64,
    /// Fitting-net energy+grad (deep potential only).
    pub fitting_s: f64,
    /// Deterministic fixed-order force/virial merge (deep potential only).
    pub reduction_s: f64,
    /// Velocity-Verlet halves plus thermostat.
    pub integrate_s: f64,
    /// Whole step.
    pub total_s: f64,
}

impl StepPhases {
    /// Sum of the deep-potential force sub-phases.
    pub fn force_phase_sum_s(&self) -> f64 {
        self.descriptor_s + self.embedding_s + self.fitting_s + self.reduction_s
    }
}

/// Append-only series of per-step phase records.
#[derive(Clone, Debug, Default)]
pub struct StepSeries {
    steps: Vec<StepPhases>,
}

impl StepSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one step.
    pub fn push(&mut self, phases: StepPhases) {
        self.steps.push(phases);
    }

    /// Most recent step, if any.
    pub fn last(&self) -> Option<&StepPhases> {
        self.steps.last()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterate over all recorded steps in order.
    pub fn iter(&self) -> impl Iterator<Item = &StepPhases> {
        self.steps.iter()
    }

    /// Element-wise sum over all steps (with `step` = number of steps).
    pub fn totals(&self) -> StepPhases {
        let mut t = StepPhases::default();
        for p in &self.steps {
            t.neighbor_s += p.neighbor_s;
            t.force_s += p.force_s;
            t.descriptor_s += p.descriptor_s;
            t.embedding_s += p.embedding_s;
            t.fitting_s += p.fitting_s;
            t.reduction_s += p.reduction_s;
            t.integrate_s += p.integrate_s;
            t.total_s += p.total_s;
        }
        t.step = self.steps.len() as u64;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_and_totals() {
        let mut s = StepSeries::new();
        assert!(s.is_empty());
        s.push(StepPhases { step: 0, force_s: 1.0, total_s: 2.0, ..Default::default() });
        s.push(StepPhases { step: 1, force_s: 3.0, total_s: 4.0, ..Default::default() });
        assert_eq!(s.len(), 2);
        assert_eq!(s.last().unwrap().step, 1);
        let t = s.totals();
        assert_eq!(t.step, 2);
        assert_eq!(t.force_s, 4.0);
        assert_eq!(t.total_s, 6.0);
    }

    #[test]
    fn force_phase_sum_adds_subphases() {
        let p = StepPhases {
            descriptor_s: 0.1,
            embedding_s: 0.2,
            fitting_s: 0.3,
            reduction_s: 0.4,
            ..Default::default()
        };
        assert!((p.force_phase_sum_s() - 1.0).abs() < 1e-12);
    }
}
