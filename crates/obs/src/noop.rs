//! Zero-cost mirrors of the recording handles, compiled when the `capture`
//! feature is off (the default).
//!
//! Every type is a zero-sized struct and every recording method an empty
//! `#[inline]` body, so instrumentation threaded through hot paths
//! disappears entirely in production builds. The API matches `capture.rs`
//! exactly; call sites never mention the feature.

use crate::snapshot::{Snapshot, Unit};
use crate::trace::TraceEvent;
use std::time::Instant;

/// No-op counter (capture disabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge (capture disabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline]
    pub fn set(&self, _v: u64) {}

    /// Does nothing.
    #[inline]
    pub fn set_max(&self, _v: u64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op histogram (capture disabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Always zero.
    #[inline]
    pub fn total(&self) -> u64 {
        0
    }
}

/// No-op registry (capture disabled): hands out zero-sized handles and
/// snapshots empty.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsRegistry;

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry
    }

    /// Always false: recording is compiled out.
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Zero-sized handle; nothing is registered.
    #[inline]
    pub fn counter(&self, _name: &str, _unit: Unit) -> Counter {
        Counter
    }

    /// Zero-sized handle; nothing is registered.
    #[inline]
    pub fn gauge(&self, _name: &str, _unit: Unit) -> Gauge {
        Gauge
    }

    /// Zero-sized handle; nothing is registered.
    #[inline]
    pub fn histogram(&self, _name: &str, _unit: Unit, _bounds: &[u64]) -> Histogram {
        Histogram
    }

    /// Always empty.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }

    /// Always empty.
    pub fn snapshot_deterministic(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// No-op trace buffer (capture disabled).
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceBuffer;

impl TraceBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        TraceBuffer
    }

    /// Zero-sized guard; nothing is recorded.
    #[inline]
    pub fn span(&self, _name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Does nothing.
    #[inline]
    pub fn push_complete(&self, _name: &'static str, _start: Instant, _end: Instant) {}

    /// Always empty.
    pub fn events(&self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always zero.
    pub fn len(&self) -> usize {
        0
    }

    /// Always true.
    pub fn is_empty(&self) -> bool {
        true
    }

    /// An empty Chrome trace (`[]`).
    pub fn to_chrome_json(&self) -> String {
        "[]".to_string()
    }
}

/// No-op span guard (capture disabled).
#[derive(Debug)]
pub struct SpanGuard;
