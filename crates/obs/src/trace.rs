//! Trace events and Chrome-trace (`chrome://tracing` / Perfetto) export.
//!
//! Events are "complete" spans (`ph: "X"` in the trace-event format): a
//! name, a start timestamp and a duration, all relative to the owning
//! buffer's origin. [`chrome_trace_json`] renders a slice of events as a
//! JSON array loadable by `chrome://tracing` or <https://ui.perfetto.dev>.

use serde::Value;

/// One completed span. Timestamps are nanoseconds since the owning trace
/// buffer's origin, so a trace file always starts near zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Logical thread lane the span is drawn on.
    pub tid: u64,
    /// Start, ns since trace origin.
    pub ts_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
}

impl TraceEvent {
    /// End of the span, ns since trace origin.
    pub fn end_ns(&self) -> u64 {
        self.ts_ns + self.dur_ns
    }
}

/// Render events in the Chrome trace-event "JSON array" format. Timestamps
/// and durations are microseconds (the format's unit), emitted with
/// fractional-ns precision so distinct events stay distinct.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let us = |ns: u64| -> Value {
        // Exact decimal micros: 1234 ns -> "1.234".
        Value::Number(format!("{}.{:03}", ns / 1_000, ns % 1_000))
    };
    let arr = Value::Array(
        events
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(e.name.to_string())),
                    ("cat".to_string(), Value::String("dpmd".to_string())),
                    ("ph".to_string(), Value::String("X".to_string())),
                    ("ts".to_string(), us(e.ts_ns)),
                    ("dur".to_string(), us(e.dur_ns)),
                    ("pid".to_string(), Value::Number("0".to_string())),
                    ("tid".to_string(), Value::Number(e.tid.to_string())),
                ])
            })
            .collect(),
    );
    serde_json::to_string(&arr).expect("trace JSON never fails")
}

/// Check that spans form a forest per lane: any two spans on the same `tid`
/// are either disjoint or one contains the other (equal boundaries count as
/// containment). Returns the first violating pair.
pub fn validate_well_nested(events: &[TraceEvent]) -> Result<(), String> {
    for (i, a) in events.iter().enumerate() {
        for b in events.iter().skip(i + 1) {
            if a.tid != b.tid {
                continue;
            }
            let disjoint = a.end_ns() <= b.ts_ns || b.end_ns() <= a.ts_ns;
            let a_in_b = b.ts_ns <= a.ts_ns && a.end_ns() <= b.end_ns();
            let b_in_a = a.ts_ns <= b.ts_ns && b.end_ns() <= a.end_ns();
            if !(disjoint || a_in_b || b_in_a) {
                return Err(format!(
                    "spans overlap without nesting: '{}' [{}, {}) vs '{}' [{}, {}) on tid {}",
                    a.name,
                    a.ts_ns,
                    a.end_ns(),
                    b.name,
                    b.ts_ns,
                    b.end_ns(),
                    a.tid
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent { name, tid: 0, ts_ns: ts, dur_ns: dur }
    }

    #[test]
    fn nested_and_disjoint_spans_validate() {
        let events = vec![ev("step", 0, 100), ev("force", 10, 50), ev("integrate", 60, 40)];
        assert!(validate_well_nested(&events).is_ok());
    }

    #[test]
    fn partial_overlap_is_rejected() {
        let events = vec![ev("a", 0, 50), ev("b", 25, 50)];
        assert!(validate_well_nested(&events).is_err());
    }

    #[test]
    fn different_lanes_may_overlap() {
        let a = TraceEvent { name: "a", tid: 0, ts_ns: 0, dur_ns: 50 };
        let b = TraceEvent { name: "b", tid: 1, ts_ns: 25, dur_ns: 50 };
        assert!(validate_well_nested(&[a, b]).is_ok());
    }

    #[test]
    fn chrome_json_uses_micros_and_complete_events() {
        let j = chrome_trace_json(&[ev("force", 1_500, 2_000)]);
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"ts\":1.500"));
        assert!(j.contains("\"dur\":2.000"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }
}
