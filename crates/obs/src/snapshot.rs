//! Point-in-time metric snapshots and their JSON form.
//!
//! A [`Snapshot`] is the serializable view of a registry: every metric with
//! its unit and value(s), sorted by name. [`Snapshot::to_json`] emits the
//! profile format (`version`/`counters`/`gauges`/`histograms`, keys in
//! sorted order, integers only), which round-trips losslessly through
//! [`Snapshot::from_json`] — the property the proptest suite pins.

use serde::Value;

/// What a metric's integer value means. The unit decides whether a metric
/// belongs in the *deterministic* snapshot: wall-clock durations
/// ([`Unit::WallNs`]) vary run to run and are excluded, while simulated
/// nanoseconds ([`Unit::Ns`], e.g. modelled backoff) are pure functions of
/// the seed and stay in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless event count.
    Count,
    /// Bytes.
    Bytes,
    /// Simulated (deterministic) nanoseconds.
    Ns,
    /// Wall-clock nanoseconds (non-deterministic; excluded from golden
    /// snapshots).
    WallNs,
}

impl Unit {
    /// Stable textual tag used in the JSON snapshot.
    pub fn as_str(&self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Ns => "ns",
            Unit::WallNs => "wall_ns",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Unit> {
        match s {
            "count" => Some(Unit::Count),
            "bytes" => Some(Unit::Bytes),
            "ns" => Some(Unit::Ns),
            "wall_ns" => Some(Unit::WallNs),
            _ => None,
        }
    }

    /// Whether a metric of this unit is reproducible bit-for-bit from the
    /// seed (and therefore belongs in golden snapshots).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Unit::WallNs)
    }
}

/// One counter or gauge at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarMetric {
    /// Dotted metric name (`comm.bytes_sent`).
    pub name: String,
    /// Value semantics.
    pub unit: Unit,
    /// Current value.
    pub value: u64,
}

/// One fixed-bucket histogram at snapshot time. Bucket `i` counts samples
/// `<= bounds[i]`; the final bucket (`counts.len() == bounds.len() + 1`)
/// holds the overflow.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Value semantics of the recorded samples.
    pub unit: Unit,
    /// Inclusive upper bounds of the non-overflow buckets (ascending).
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total samples recorded (sum over buckets).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A registry's full state at one instant, sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotone counters.
    pub counters: Vec<ScalarMetric>,
    /// Last-value / high-water gauges.
    pub gauges: Vec<ScalarMetric>,
    /// Fixed-bucket histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Drop every metric whose unit is non-deterministic (wall-clock time),
    /// leaving the golden-comparable subset.
    pub fn retain_deterministic(&mut self) {
        self.counters.retain(|m| m.unit.is_deterministic());
        self.gauges.retain(|m| m.unit.is_deterministic());
        self.histograms.retain(|h| h.unit.is_deterministic());
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of all counter values whose name starts with `prefix` — handy for
    /// families like `nnet.gemm.*` or `fugaku.tni*`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|m| m.name.starts_with(prefix)).map(|m| m.value).sum()
    }

    /// The profile JSON document (compact, keys in the snapshot's sorted
    /// order, lossless `u64` values).
    pub fn to_json(&self) -> String {
        let mut root: Vec<(String, Value)> = Vec::with_capacity(4);
        root.push(("version".to_string(), num(1)));
        let scalars = |ms: &[ScalarMetric]| {
            Value::Object(
                ms.iter()
                    .map(|m| {
                        (
                            m.name.clone(),
                            Value::Object(vec![
                                ("unit".to_string(), Value::String(m.unit.as_str().to_string())),
                                ("value".to_string(), num(m.value)),
                            ]),
                        )
                    })
                    .collect(),
            )
        };
        root.push(("counters".to_string(), scalars(&self.counters)));
        root.push(("gauges".to_string(), scalars(&self.gauges)));
        root.push((
            "histograms".to_string(),
            Value::Object(
                self.histograms
                    .iter()
                    .map(|h| {
                        (
                            h.name.clone(),
                            Value::Object(vec![
                                ("unit".to_string(), Value::String(h.unit.as_str().to_string())),
                                (
                                    "bounds".to_string(),
                                    Value::Array(h.bounds.iter().map(|&b| num(b)).collect()),
                                ),
                                (
                                    "counts".to_string(),
                                    Value::Array(h.counts.iter().map(|&c| num(c)).collect()),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        serde_json::to_string(&Value::Object(root)).expect("snapshot JSON never fails")
    }

    /// Parse a profile JSON document back into a snapshot.
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        let v = serde_json::parse(s).map_err(|e| format!("profile JSON: {e:?}"))?;
        let obj = v.as_object().ok_or("profile root must be an object")?;
        let section = |key: &str| -> Result<&Value, String> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("profile missing '{key}'"))
        };
        let scalars = |key: &str| -> Result<Vec<ScalarMetric>, String> {
            let fields = section(key)?
                .as_object()
                .ok_or_else(|| format!("'{key}' must be an object"))?;
            fields
                .iter()
                .map(|(name, m)| {
                    let unit = get_unit(m).ok_or_else(|| format!("{name}: bad unit"))?;
                    let value = get_u64(m, "value").ok_or_else(|| format!("{name}: bad value"))?;
                    Ok(ScalarMetric { name: name.clone(), unit, value })
                })
                .collect()
        };
        let counters = scalars("counters")?;
        let gauges = scalars("gauges")?;
        let histograms = section("histograms")?
            .as_object()
            .ok_or("'histograms' must be an object")?
            .iter()
            .map(|(name, h)| {
                let unit = get_unit(h).ok_or_else(|| format!("{name}: bad unit"))?;
                let bounds = get_u64_array(h, "bounds").ok_or_else(|| format!("{name}: bad bounds"))?;
                let counts = get_u64_array(h, "counts").ok_or_else(|| format!("{name}: bad counts"))?;
                Ok(HistogramSnapshot { name: name.clone(), unit, bounds, counts })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Snapshot { counters, gauges, histograms })
    }
}

fn num(v: u64) -> Value {
    Value::Number(v.to_string())
}

fn get_u64(obj: &Value, key: &str) -> Option<u64> {
    match obj.get(key)? {
        Value::Number(text) => text.parse().ok(),
        _ => None,
    }
}

fn get_unit(obj: &Value) -> Option<Unit> {
    match obj.get("unit")? {
        Value::String(s) => Unit::parse(s),
        _ => None,
    }
}

fn get_u64_array(obj: &Value, key: &str) -> Option<Vec<u64>> {
    match obj.get(key)? {
        Value::Array(items) => items
            .iter()
            .map(|v| match v {
                Value::Number(text) => text.parse().ok(),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![
                ScalarMetric { name: "a.bytes".into(), unit: Unit::Bytes, value: 12 },
                ScalarMetric { name: "b.wall_ns".into(), unit: Unit::WallNs, value: 999 },
            ],
            gauges: vec![ScalarMetric { name: "g.peak".into(), unit: Unit::Bytes, value: 7 }],
            histograms: vec![HistogramSnapshot {
                name: "h.rounds".into(),
                unit: Unit::Count,
                bounds: vec![0, 1, 2],
                counts: vec![5, 1, 0, 2],
            }],
        }
    }

    #[test]
    fn json_round_trips_bit_identically() {
        let s = sample();
        let j = s.to_json();
        let back = Snapshot::from_json(&j).unwrap();
        assert_eq!(s, back);
        assert_eq!(j, back.to_json(), "re-serialization must be byte-identical");
    }

    #[test]
    fn deterministic_filter_drops_wall_clock_metrics() {
        let mut s = sample();
        s.retain_deterministic();
        assert_eq!(s.counter("a.bytes"), Some(12));
        assert_eq!(s.counter("b.wall_ns"), None);
        assert_eq!(s.histograms.len(), 1);
    }

    #[test]
    fn unit_tags_round_trip() {
        for u in [Unit::Count, Unit::Bytes, Unit::Ns, Unit::WallNs] {
            assert_eq!(Unit::parse(u.as_str()), Some(u));
        }
        assert_eq!(Unit::parse("parsecs"), None);
    }

    #[test]
    fn histogram_total_sums_buckets() {
        assert_eq!(sample().histograms[0].total(), 8);
    }
}
