//! Structural JSON-schema validation for profile and trace files.
//!
//! CI's `profile-smoke` job (and the CLI `validate-obs` subcommand) use
//! these checks to assert that `md --profile/--trace` emitted well-formed
//! documents without comparing against a golden file.

use crate::snapshot::Unit;
use serde::Value;

/// Validate a parsed profile document against the snapshot schema:
/// `{version: 1, counters: {...}, gauges: {...}, histograms: {...}}` where
/// every scalar entry is `{unit, value}` and every histogram entry is
/// `{unit, bounds, counts}` with `counts.len() == bounds.len() + 1`.
pub fn validate_profile(v: &Value) -> Result<(), String> {
    let obj = v.as_object().ok_or("profile: root must be an object")?;
    match obj.iter().find(|(k, _)| k == "version").map(|(_, v)| v) {
        Some(Value::Number(n)) if n == "1" => {}
        Some(_) => return Err("profile: 'version' must be the number 1".into()),
        None => return Err("profile: missing 'version'".into()),
    }
    for key in ["counters", "gauges"] {
        let section = obj
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("profile: missing '{key}'"))?;
        let metrics = section.as_object().ok_or_else(|| format!("profile: '{key}' must be an object"))?;
        for (name, m) in metrics {
            check_unit(m).map_err(|e| format!("profile: {key}.{name}: {e}"))?;
            check_u64(m, "value").map_err(|e| format!("profile: {key}.{name}: {e}"))?;
        }
    }
    let hists = obj
        .iter()
        .find(|(k, _)| k == "histograms")
        .map(|(_, v)| v)
        .ok_or("profile: missing 'histograms'")?
        .as_object()
        .ok_or("profile: 'histograms' must be an object")?;
    for (name, h) in hists {
        check_unit(h).map_err(|e| format!("profile: histograms.{name}: {e}"))?;
        let bounds = check_u64_array(h, "bounds").map_err(|e| format!("profile: histograms.{name}: {e}"))?;
        let counts = check_u64_array(h, "counts").map_err(|e| format!("profile: histograms.{name}: {e}"))?;
        if counts != bounds + 1 {
            return Err(format!(
                "profile: histograms.{name}: counts has {counts} entries, expected bounds+1 = {}",
                bounds + 1
            ));
        }
    }
    Ok(())
}

/// Parse then [`validate_profile`].
pub fn validate_profile_json(s: &str) -> Result<(), String> {
    let v = serde_json::parse(s).map_err(|e| format!("profile: invalid JSON: {e:?}"))?;
    validate_profile(&v)
}

/// Validate a parsed Chrome trace document: a JSON array of complete events
/// (`ph: "X"`) with string `name`/`cat`, numeric non-negative `ts`/`dur`,
/// and numeric `pid`/`tid`.
pub fn validate_trace(v: &Value) -> Result<(), String> {
    let events = match v {
        Value::Array(a) => a,
        _ => return Err("trace: root must be an array".into()),
    };
    for (i, e) in events.iter().enumerate() {
        let obj = e.as_object().ok_or_else(|| format!("trace: event {i} must be an object"))?;
        let field = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match field("name") {
            Some(Value::String(_)) => {}
            _ => return Err(format!("trace: event {i}: 'name' must be a string")),
        }
        match field("ph") {
            Some(Value::String(ph)) if ph == "X" => {}
            _ => return Err(format!("trace: event {i}: 'ph' must be \"X\"")),
        }
        for key in ["ts", "dur"] {
            match field(key) {
                Some(Value::Number(n)) if !n.starts_with('-') => {}
                _ => return Err(format!("trace: event {i}: '{key}' must be a non-negative number")),
            }
        }
        for key in ["pid", "tid"] {
            match field(key) {
                Some(Value::Number(_)) => {}
                _ => return Err(format!("trace: event {i}: '{key}' must be a number")),
            }
        }
    }
    Ok(())
}

/// Parse then [`validate_trace`].
pub fn validate_trace_json(s: &str) -> Result<(), String> {
    let v = serde_json::parse(s).map_err(|e| format!("trace: invalid JSON: {e:?}"))?;
    validate_trace(&v)
}

fn check_unit(m: &Value) -> Result<(), String> {
    match m.get("unit") {
        Some(Value::String(s)) if Unit::parse(s).is_some() => Ok(()),
        Some(Value::String(s)) => Err(format!("unknown unit '{s}'")),
        _ => Err("'unit' must be a string".into()),
    }
}

fn check_u64(m: &Value, key: &str) -> Result<(), String> {
    match m.get(key) {
        Some(Value::Number(n)) if n.parse::<u64>().is_ok() => Ok(()),
        _ => Err(format!("'{key}' must be an unsigned integer")),
    }
}

fn check_u64_array(m: &Value, key: &str) -> Result<usize, String> {
    match m.get(key) {
        Some(Value::Array(items)) => {
            for v in items {
                match v {
                    Value::Number(n) if n.parse::<u64>().is_ok() => {}
                    _ => return Err(format!("'{key}' entries must be unsigned integers")),
                }
            }
            Ok(items.len())
        }
        _ => Err(format!("'{key}' must be an array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramSnapshot, ScalarMetric, Snapshot};
    use crate::trace::{chrome_trace_json, TraceEvent};

    #[test]
    fn real_snapshot_json_validates() {
        let s = Snapshot {
            counters: vec![ScalarMetric { name: "c".into(), unit: Unit::Count, value: 3 }],
            gauges: vec![],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                unit: Unit::Count,
                bounds: vec![1, 2],
                counts: vec![0, 1, 2],
            }],
        };
        validate_profile_json(&s.to_json()).unwrap();
    }

    #[test]
    fn real_trace_json_validates() {
        let j = chrome_trace_json(&[TraceEvent { name: "step", tid: 0, ts_ns: 0, dur_ns: 10 }]);
        validate_trace_json(&j).unwrap();
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(validate_profile_json("{}").is_err());
        assert!(validate_profile_json("[1,2]").is_err());
        assert!(validate_profile_json(
            r#"{"version":1,"counters":{"c":{"unit":"furlongs","value":1}},"gauges":{},"histograms":{}}"#
        )
        .is_err());
        assert!(validate_profile_json(
            r#"{"version":1,"counters":{},"gauges":{},"histograms":{"h":{"unit":"count","bounds":[1],"counts":[1]}}}"#
        )
        .is_err(), "counts must have bounds+1 entries");
        assert!(validate_trace_json("{}").is_err());
        assert!(validate_trace_json(r#"[{"name":"x","ph":"B","ts":0,"dur":0,"pid":0,"tid":0}]"#).is_err());
    }
}
