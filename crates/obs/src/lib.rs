//! # dpmd-obs — the measurement substrate of the reproduction.
//!
//! The paper's results rest on attribution: the 81 % communication saving
//! and the 14.11× compute speedup were found by charging time and bytes to
//! individual kernels and exchange phases. This crate is the repro's
//! equivalent instrument: a **global-free** [`MetricsRegistry`] of typed
//! counters, gauges and fixed-bucket histograms, plus a [`TraceBuffer`] of
//! nestable span timers that exports `chrome://tracing` / Perfetto event
//! files.
//!
//! Design constraints (per the observability issue):
//!
//! * **Global-free** — a registry is a value you thread through the stack;
//!   two simulations in one process never share counters.
//! * **Allocation-free on the hot path** — handles are registered once
//!   (`registry.counter(...)`) and then increment a pre-allocated atomic
//!   cell; recording never allocates.
//! * **Zero-cost when disabled** — without the `capture` cargo feature,
//!   every handle is a zero-sized struct whose methods are empty `#[inline]`
//!   bodies, so instrumentation compiles away entirely.
//! * **Deterministic** — [`MetricsRegistry::snapshot_deterministic`] drops
//!   wall-clock-valued metrics ([`Unit::WallNs`]) and sorts by name, so the
//!   same seed yields a bit-identical JSON snapshot; wall times live in the
//!   (schema-validated, not golden-compared) Chrome trace instead.
//!
//! Always-on companions (compiled with or without `capture`):
//! [`steps::StepSeries`] (the per-step phase store `minimd`'s `StepTiming`
//! is a view over), [`schema`] (JSON validators for profile and trace
//! files), [`trace::TraceEvent`] utilities, and [`clock::wall_now`] — the
//! single sanctioned wall-clock read outside this crate's capture layer
//! (determinism invariant D4, enforced by `dpmd-analyze`).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod clock;
pub mod schema;
pub mod snapshot;
pub mod steps;
pub mod trace;

#[cfg(feature = "capture")]
mod capture;
#[cfg(feature = "capture")]
pub use capture::{Counter, Gauge, Histogram, MetricsRegistry, SpanGuard, TraceBuffer};

#[cfg(not(feature = "capture"))]
mod noop;
#[cfg(not(feature = "capture"))]
pub use noop::{Counter, Gauge, Histogram, MetricsRegistry, SpanGuard, TraceBuffer};

pub use snapshot::{HistogramSnapshot, ScalarMetric, Snapshot, Unit};
pub use trace::TraceEvent;
