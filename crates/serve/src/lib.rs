//! # dpmd-serve — the multi-replica batch scheduler
//!
//! One process, R independent trajectories, one shared [`DpEngine`]. Each
//! scheduler round admits up to `max_in_flight` not-yet-finished replicas
//! (in replica order — that bound is the backpressure: replicas beyond it
//! wait for a later round rather than queueing work), runs the first Verlet
//! half of each admitted step, then evaluates **all admitted replicas'
//! forces in one fused call** ([`DpEngine::energy_forces_batched`]) before
//! completing their steps. The fused call stacks same-species fitting rows
//! from every replica into single batched GEMMs and walks the embedding
//! pass type-grouped across the whole batch — the paper's type-sorted
//! batching, applied across replicas.
//!
//! **Determinism guarantee:** every replica's trajectory is bit-identical to
//! the same replica stepped solo ([`BatchScheduler::run_sequential`]), at
//! any batch size, `max_in_flight` bound, and thread-pool width. Batching
//! changes *when* GEMMs run, never *what* they compute; the per-replica
//! integration state never leaves its own `Simulation`. Enforced end-to-end
//! by `tests/batch_determinism.rs`.
//!
//! Metrics (when observing): `serve.replicas` (gauge), `serve.rounds` /
//! `serve.steps` / `serve.batch.gemm.fused` / `serve.batch.gemm.fused_rows`
//! (counters), and `serve.batch.occupancy` (histogram of replicas fused per
//! round).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

use std::sync::Arc;

use deepmd::batch::{BatchJob, BatchWorkspace};
use deepmd::engine::DpEngine;
use dpmd_core::EngineParts;
use dpmd_obs::{Counter, Histogram, MetricsRegistry, TraceBuffer, Unit};
use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::{ForcePhases, Potential, PotentialOutput};
use minimd::sim::{Simulation, Thermo};
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;

/// A [`Potential`] that delegates to a shared engine, so many
/// [`Simulation`]s can run over one set of weights. Used for each replica's
/// initial force evaluation and for the sequential (solo) stepping path; the
/// batched path bypasses `compute` and calls the engine directly.
struct SharedDp(Arc<DpEngine>);

impl Potential for SharedDp {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        self.0.compute(atoms, nl, bx)
    }

    fn cutoff(&self) -> f64 {
        self.0.cutoff()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn phase_times(&self) -> Option<ForcePhases> {
        self.0.last_phases()
    }
}

/// One trajectory owned by the scheduler.
pub struct Replica {
    /// Replica index (also its position in the admission order).
    pub id: usize,
    /// The replica's seed (parts seed + id).
    pub seed: u64,
    /// The underlying simulation.
    pub sim: Simulation,
    /// Steps this replica should run in total.
    pub target_steps: u64,
    /// Thermo trace, one entry per completed step.
    pub trace: Vec<Thermo>,
}

impl Replica {
    /// Steps completed so far.
    pub fn done_steps(&self) -> u64 {
        self.trace.len() as u64
    }

    fn finished(&self) -> bool {
        self.done_steps() >= self.target_steps
    }
}

/// Metric handles registered by [`BatchScheduler::attach_obs`].
struct ServeObs {
    rounds: Counter,
    steps: Counter,
    fused_gemms: Counter,
    fused_rows: Counter,
    occupancy: Histogram,
}

/// Scheduler state: R replicas stepping through one shared engine.
pub struct BatchScheduler {
    engine: Arc<DpEngine>,
    replicas: Vec<Replica>,
    /// Admission bound per round (backpressure; `0` means "all").
    max_in_flight: usize,
    obs: Option<ServeObs>,
    /// Stacked-buffer reuse across rounds (see
    /// [`deepmd::batch::BatchWorkspace`]): the fused passes allocate their
    /// intermediates once, not once per round.
    workspace: BatchWorkspace,
}

impl BatchScheduler {
    /// Build `replicas` trajectories over one engine from resolved engine
    /// parts. Replica `r` uses seed `parts.seed + r` for its initial state,
    /// so replicas are distinct but individually reproducible. The paper's
    /// simulation settings (skin 2 Å, rebuild every 50 steps) match
    /// `dpmd-core`'s solo engine.
    pub fn new(parts: EngineParts, replicas: usize, steps_per_replica: u64) -> Self {
        let mut dp = DpEngine::new(parts.model.clone(), parts.precision);
        if let Some(n) = parts.threads {
            dp = dp.with_pool(Arc::new(dpmd_threads::ThreadPool::new(n)));
        }
        if let Some((reg, _)) = &parts.obs {
            dp.attach_obs(reg);
        }
        let engine = Arc::new(dp);
        let mut parts = parts;
        let base_seed = parts.seed;
        let reps = (0..replicas)
            .map(|id| {
                parts.seed = base_seed + id as u64;
                let (bx, atoms) = parts.initial_state();
                let vv = parts.integrator();
                let mut sim = Simulation::new(
                    bx,
                    atoms,
                    Box::new(SharedDp(Arc::clone(&engine))),
                    vv,
                    2.0,
                    50,
                );
                if let Some((reg, trace)) = &parts.obs {
                    sim.attach_obs(reg, trace);
                }
                Replica {
                    id,
                    seed: parts.seed,
                    sim,
                    target_steps: steps_per_replica,
                    trace: Vec::with_capacity(steps_per_replica as usize),
                }
            })
            .collect();
        let mut sched =
            BatchScheduler {
                engine,
                replicas: reps,
                max_in_flight: 0,
                obs: None,
                workspace: BatchWorkspace::new(),
            };
        if let Some((reg, trace)) = &parts.obs {
            sched.attach_obs(reg, trace);
        }
        sched
    }

    /// Bound the number of replicas admitted per round (backpressure).
    /// `0` (the default) admits every unfinished replica.
    pub fn max_in_flight(mut self, k: usize) -> Self {
        self.max_in_flight = k;
        self
    }

    /// Register `serve.*` metrics on `reg`.
    pub fn attach_obs(&mut self, reg: &MetricsRegistry, _trace: &TraceBuffer) {
        reg.gauge("serve.replicas", Unit::Count).set(self.replicas.len() as u64);
        self.obs = Some(ServeObs {
            rounds: reg.counter("serve.rounds", Unit::Count),
            steps: reg.counter("serve.steps", Unit::Count),
            fused_gemms: reg.counter("serve.batch.gemm.fused", Unit::Count),
            fused_rows: reg.counter("serve.batch.gemm.fused_rows", Unit::Count),
            occupancy: reg.histogram("serve.batch.occupancy", Unit::Count, &[1, 2, 4, 8, 16, 32]),
        });
    }

    /// The replicas (inspect trajectories/thermo after running).
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The shared engine.
    pub fn engine(&self) -> &DpEngine {
        &self.engine
    }

    /// Step every replica to its target with fused batch evaluation.
    /// Returns the number of scheduler rounds run.
    pub fn run(&mut self) -> u64 {
        let mut rounds = 0u64;
        // Round scratch, allocated once and reused every round: the hot
        // loop below runs once per step per fleet and must not allocate.
        let mut admitted: Vec<usize> = Vec::new(); // dpmd-allow D5: round scratch, reused across rounds
        let mut toks = Vec::new(); // dpmd-allow D5: round scratch, drained each round
        let mut force_bufs: Vec<Vec<Vec3>> = Vec::new(); // dpmd-allow D5: round scratch, drained each round
        loop {
            // Admission: the first `max_in_flight` unfinished replicas, in
            // replica order. Bounding here (rather than queueing every
            // replica's step) is the backpressure: a replica past the bound
            // simply isn't admitted until a slot frees up.
            let bound = if self.max_in_flight == 0 { usize::MAX } else { self.max_in_flight };
            admitted.clear();
            admitted.extend(
                self.replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.finished())
                    .map(|(i, _)| i)
                    .take(bound),
            );
            if admitted.is_empty() {
                return rounds;
            }
            rounds += 1;

            // Phase A: first Verlet half + neighbour maintenance, per
            // replica, and hand the force buffers out of the atom arrays so
            // the simulations can be borrowed immutably by the batch jobs.
            for &ri in &admitted {
                let r = &mut self.replicas[ri];
                toks.push(r.sim.begin_step());
                let mut f = std::mem::take(&mut r.sim.atoms.force);
                f.fill(Vec3::ZERO);
                force_bufs.push(f);
            }

            // Phase B: one fused force evaluation over every admitted
            // replica.
            let t_force = dpmd_obs::clock::wall_now();
            let (outs, stats) = {
                // The jobs borrow every admitted replica for the duration of
                // the fused call, so the Vec cannot outlive the round.
                let mut jobs: Vec<BatchJob<'_>> = admitted
                    .iter()
                    .zip(force_bufs.iter_mut())
                    .map(|(&ri, forces)| {
                        let sim = &self.replicas[ri].sim;
                        BatchJob { atoms: &sim.atoms, nl: &sim.nl, bx: &sim.bx, forces }
                    })
                    .collect(); // dpmd-allow D5: per-round borrow of the replicas; cannot be stored across rounds
                self.engine.energy_forces_batched_with(&mut jobs, &mut self.workspace)
            };
            let t_force_end = dpmd_obs::clock::wall_now();

            // Phase C: restore forces and complete each admitted step. The
            // per-replica wall split of a fused evaluation isn't separable,
            // so each replica's series records the batch-aggregate phases.
            for (((&ri, tok), buf), out) in
                admitted.iter().zip(toks.drain(..)).zip(force_bufs.drain(..)).zip(outs)
            {
                let r = &mut self.replicas[ri];
                r.sim.atoms.force = buf;
                let thermo = r.sim.complete_step(out, stats.phases, (t_force, t_force_end), tok);
                r.trace.push(thermo);
            }

            if let Some(o) = &self.obs {
                o.rounds.inc();
                o.steps.add(admitted.len() as u64);
                o.fused_gemms.add(stats.fused_gemms);
                o.fused_rows.add(stats.fused_rows);
                o.occupancy.record(admitted.len() as u64);
            }
        }
    }

    /// Step every replica to its target one at a time through the solo
    /// engine path — the determinism reference and the bench baseline the
    /// batched path is compared against.
    pub fn run_sequential(&mut self) -> u64 {
        let mut steps = 0u64;
        for r in &mut self.replicas {
            while !r.finished() {
                let thermo = r.sim.step();
                r.trace.push(thermo);
                steps += 1;
            }
        }
        steps
    }
}
