//! # dpmd-serve — batched multi-replica MD, fixed-fleet and continuous
//!
//! One process, many independent trajectories, one shared [`DpEngine`].
//! Each scheduler round runs the first Verlet half of every admitted
//! replica, then evaluates **all admitted replicas' forces in one fused
//! call** ([`DpEngine::energy_forces_batched`]) before completing their
//! steps. The fused call stacks same-species fitting rows from every
//! replica into single batched GEMMs and walks the embedding pass
//! type-grouped across the whole batch — the paper's type-sorted batching,
//! applied across replicas.
//!
//! Two front ends share that fused round:
//!
//! - [`BatchScheduler`] (module [`scheduler`]): a fixed fleet known up
//!   front, stepped round-robin to completion. The bench baseline and the
//!   determinism reference.
//! - [`ContinuousScheduler`] (module [`continuous`]): a long-running
//!   multi-tenant service. Tenants ([`tenant`]) attach and detach
//!   mid-flight through a priority/deadline-ordered [`AdmissionQueue`]
//!   ([`queue`]) with typed backpressure ([`AdmitError`]), driven by a
//!   deterministic seed-derived arrival script ([`script`]) because wall
//!   clocks are banned on deterministic paths (analyzer rule D4).
//!
//! **Determinism guarantee:** every replica/tenant trajectory is
//! bit-identical to the same seed stepped solo
//! ([`BatchScheduler::run_sequential`]), at any batch size, in-flight cap
//! ([`InFlightCap`]), priority class, arrival schedule, and thread-pool
//! width. Batching changes *when* GEMMs run, never *what* they compute;
//! per-replica integration state never leaves its own `Simulation`.
//! Enforced end-to-end by `tests/batch_determinism.rs` and
//! `tests/serve_continuous.rs`.
//!
//! Metrics (when observing): `serve.replicas` (gauge), `serve.rounds` /
//! `serve.steps` / `serve.batch.gemm.fused` / `serve.batch.gemm.fused_rows`
//! (counters) and `serve.batch.occupancy` (histogram) from the fixed-fleet
//! scheduler; `serve.cont.*` (rounds, steps, admissions, rejections,
//! detaches, deadline_missed, occupancy), `serve.queue.depth` /
//! `serve.queue.wait_rounds`, and per-tenant
//! `serve.tenant.NNN.{steps,queue_wait_rounds}` from the continuous
//! service. Occupancy histograms register their bucket edges once the cap
//! and fleet are known, so full-batch rounds at the cap land in a dedicated
//! bucket; idle (zero-admission) rounds are never recorded as occupancy.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod continuous;
pub mod queue;
pub mod scheduler;
pub mod script;
pub mod tenant;

pub use continuous::{ContinuousScheduler, ScriptOutcome};
pub use queue::{AdmissionQueue, AdmitError, InFlightCap, Priority, QueueEntry};
pub use scheduler::{BatchScheduler, Replica};
pub use script::ArrivalScript;
pub use tenant::{Tenant, TenantSpec, TenantState};

use std::sync::Arc;

use deepmd::engine::DpEngine;
use minimd::atoms::Atoms;
use minimd::neighbor::NeighborList;
use minimd::potential::{ForcePhases, Potential, PotentialOutput};
use minimd::simbox::SimBox;

/// A [`Potential`] that delegates to a shared engine, so many
/// [`Simulation`](minimd::sim::Simulation)s can run over one set of
/// weights. Used for each replica's initial force evaluation and for the
/// sequential (solo) stepping path; the batched path bypasses `compute`
/// and calls the engine directly.
pub(crate) struct SharedDp(pub(crate) Arc<DpEngine>);

impl Potential for SharedDp {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        self.0.compute(atoms, nl, bx)
    }

    fn cutoff(&self) -> f64 {
        self.0.cutoff()
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn phase_times(&self) -> Option<ForcePhases> {
        self.0.last_phases()
    }
}
