//! The fixed-membership batch scheduler: R replicas known up front, stepped
//! round-robin through one shared engine with fused force evaluation. This
//! is both the bench baseline and the determinism reference for the
//! continuous service in [`crate::continuous`].

use std::sync::Arc;

use deepmd::batch::{BatchJob, BatchWorkspace};
use deepmd::engine::DpEngine;
use dpmd_core::EngineParts;
use dpmd_obs::{Counter, Histogram, MetricsRegistry, TraceBuffer, Unit};
use minimd::sim::{Simulation, Thermo};
use minimd::vec3::Vec3;

use crate::queue::InFlightCap;
use crate::SharedDp;

/// Bucket edges for the `serve.batch.occupancy` histogram: the power-of-two
/// ladder plus the exact in-flight cap and fleet size, so a full-batch round
/// at the cap always lands in its own bucket instead of straddling an edge.
/// Sorted and deduplicated — the registry requires ascending bounds.
pub(crate) fn occupancy_bounds(cap: Option<usize>, fleet: usize) -> Vec<u64> {
    let mut b: Vec<u64> = vec![1, 2, 4, 8, 16, 32]; // dpmd-allow D7: histogram bounds built once per scheduler construction
    if let Some(c) = cap {
        b.push(c as u64);
    }
    if fleet > 0 {
        b.push(fleet as u64);
    }
    b.sort_unstable();
    b.dedup();
    b
}

/// One trajectory owned by the scheduler.
pub struct Replica {
    /// Replica index (also its position in the admission order).
    pub id: usize,
    /// The replica's seed (parts seed + id).
    pub seed: u64,
    /// The underlying simulation.
    pub sim: Simulation,
    /// Steps this replica should run in total.
    pub target_steps: u64,
    /// Thermo trace, one entry per completed step.
    pub trace: Vec<Thermo>,
}

impl Replica {
    /// Steps completed so far.
    pub fn done_steps(&self) -> u64 {
        self.trace.len() as u64
    }

    fn finished(&self) -> bool {
        self.done_steps() >= self.target_steps
    }
}

/// Metric handles registered by [`BatchScheduler::attach_obs`].
struct ServeObs {
    reg: MetricsRegistry,
    rounds: Counter,
    steps: Counter,
    fused_gemms: Counter,
    fused_rows: Counter,
    /// Registered lazily at the start of [`BatchScheduler::run`], once the
    /// in-flight cap is final — the registry fixes histogram bounds at first
    /// registration, and the cap must be one of them.
    occupancy: Option<Histogram>,
}

/// Scheduler state: R replicas stepping through one shared engine.
pub struct BatchScheduler {
    engine: Arc<DpEngine>,
    replicas: Vec<Replica>,
    /// Admission bound per round (backpressure).
    cap: InFlightCap,
    obs: Option<ServeObs>,
    /// Stacked-buffer reuse across rounds (see
    /// [`deepmd::batch::BatchWorkspace`]): the fused passes allocate their
    /// intermediates once, not once per round.
    workspace: BatchWorkspace,
}

impl BatchScheduler {
    /// Build `replicas` trajectories over one engine from resolved engine
    /// parts. Replica `r` uses seed `parts.seed + r` for its initial state,
    /// so replicas are distinct but individually reproducible. The paper's
    /// simulation settings (skin 2 Å, rebuild every 50 steps) match
    /// `dpmd-core`'s solo engine.
    pub fn new(parts: EngineParts, replicas: usize, steps_per_replica: u64) -> Self {
        let mut dp = DpEngine::new(parts.model.clone(), parts.precision);
        if let Some(n) = parts.threads {
            dp = dp.with_pool(Arc::new(dpmd_threads::ThreadPool::new(n)));
        }
        if let Some((reg, _)) = &parts.obs {
            dp.attach_obs(reg);
        }
        let engine = Arc::new(dp);
        let mut parts = parts;
        let base_seed = parts.seed;
        let reps = (0..replicas)
            .map(|id| {
                parts.seed = base_seed + id as u64;
                let (bx, atoms) = parts.initial_state();
                let vv = parts.integrator();
                let mut sim = Simulation::new(
                    bx,
                    atoms,
                    Box::new(SharedDp(Arc::clone(&engine))),
                    vv,
                    2.0,
                    50,
                );
                if let Some((reg, trace)) = &parts.obs {
                    sim.attach_obs(reg, trace);
                }
                Replica {
                    id,
                    seed: parts.seed,
                    sim,
                    target_steps: steps_per_replica,
                    trace: Vec::with_capacity(steps_per_replica as usize),
                }
            })
            .collect();
        let mut sched = BatchScheduler {
            engine,
            replicas: reps,
            cap: InFlightCap::All,
            obs: None,
            workspace: BatchWorkspace::new(),
        };
        if let Some((reg, trace)) = &parts.obs {
            sched.attach_obs(reg, trace);
        }
        sched
    }

    /// Bound the number of replicas admitted per round (backpressure),
    /// using the legacy count convention: `0` (the default) admits every
    /// unfinished replica. Prefer [`in_flight_cap`](Self::in_flight_cap),
    /// which makes "unlimited" explicit instead of a zero sentinel.
    pub fn max_in_flight(self, k: usize) -> Self {
        self.in_flight_cap(InFlightCap::from_legacy_count(k))
    }

    /// Bound the number of replicas admitted per round (backpressure).
    pub fn in_flight_cap(mut self, cap: InFlightCap) -> Self {
        self.cap = cap;
        self
    }

    /// Register `serve.*` metrics on `reg`. The occupancy histogram is
    /// deferred to [`run`](Self::run) so its bucket edges can include the
    /// final in-flight cap and fleet size.
    pub fn attach_obs(&mut self, reg: &MetricsRegistry, _trace: &TraceBuffer) {
        reg.gauge("serve.replicas", Unit::Count).set(self.replicas.len() as u64);
        self.obs = Some(ServeObs {
            reg: reg.clone(),
            rounds: reg.counter("serve.rounds", Unit::Count),
            steps: reg.counter("serve.steps", Unit::Count),
            fused_gemms: reg.counter("serve.batch.gemm.fused", Unit::Count),
            fused_rows: reg.counter("serve.batch.gemm.fused_rows", Unit::Count),
            occupancy: None,
        });
    }

    /// The replicas (inspect trajectories/thermo after running).
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The shared engine.
    pub fn engine(&self) -> &DpEngine {
        &self.engine
    }

    /// Step every replica to its target with fused batch evaluation.
    /// Returns the number of scheduler rounds run.
    ///
    /// Occupancy is recorded once per round that admits at least one
    /// replica; empty rounds never reach the histogram (they end the run).
    pub fn run(&mut self) -> u64 {
        let mut rounds = 0u64;
        // The cap and fleet are final here, so the occupancy histogram can
        // now get bucket edges that contain both exactly.
        if let Some(o) = &mut self.obs {
            if o.occupancy.is_none() {
                let bounds = occupancy_bounds(self.cap.limit(), self.replicas.len()); // dpmd-allow D5: one-time registration before the round loop
                o.occupancy =
                    Some(o.reg.histogram("serve.batch.occupancy", Unit::Count, &bounds));
            }
        }
        // Round scratch, allocated once and reused every round: the hot
        // loop below runs once per step per fleet and must not allocate.
        let mut admitted: Vec<usize> = Vec::new(); // dpmd-allow D5: round scratch, reused across rounds
        let mut toks = Vec::new(); // dpmd-allow D5: round scratch, drained each round
        let mut force_bufs: Vec<Vec<Vec3>> = Vec::new(); // dpmd-allow D5: round scratch, drained each round
        loop {
            // Admission: the first `cap.bound()` unfinished replicas, in
            // replica order. Bounding here (rather than queueing every
            // replica's step) is the backpressure: a replica past the bound
            // simply isn't admitted until a slot frees up.
            let bound = self.cap.bound();
            admitted.clear();
            admitted.extend(
                self.replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.finished())
                    .map(|(i, _)| i)
                    .take(bound),
            );
            if admitted.is_empty() {
                return rounds;
            }
            rounds += 1;

            // Phase A: first Verlet half + neighbour maintenance, per
            // replica, and hand the force buffers out of the atom arrays so
            // the simulations can be borrowed immutably by the batch jobs.
            for &ri in &admitted {
                let r = &mut self.replicas[ri];
                toks.push(r.sim.begin_step());
                let mut f = std::mem::take(&mut r.sim.atoms.force);
                f.fill(Vec3::ZERO);
                force_bufs.push(f);
            }

            // Phase B: one fused force evaluation over every admitted
            // replica.
            let t_force = dpmd_obs::clock::wall_now();
            let (outs, stats) = {
                // The jobs borrow every admitted replica for the duration of
                // the fused call, so the Vec cannot outlive the round.
                let mut jobs: Vec<BatchJob<'_>> = admitted
                    .iter()
                    .zip(force_bufs.iter_mut())
                    .map(|(&ri, forces)| {
                        let sim = &self.replicas[ri].sim;
                        BatchJob { atoms: &sim.atoms, nl: &sim.nl, bx: &sim.bx, forces }
                    })
                    .collect(); // dpmd-allow D5: per-round borrow of the replicas; cannot be stored across rounds
                self.engine.energy_forces_batched_with(&mut jobs, &mut self.workspace)
            };
            let t_force_end = dpmd_obs::clock::wall_now();

            // Phase C: restore forces and complete each admitted step. The
            // per-replica wall split of a fused evaluation isn't separable,
            // so each replica's series records the batch-aggregate phases.
            for (((&ri, tok), buf), out) in
                admitted.iter().zip(toks.drain(..)).zip(force_bufs.drain(..)).zip(outs)
            {
                let r = &mut self.replicas[ri];
                r.sim.atoms.force = buf;
                let thermo = r.sim.complete_step(out, stats.phases, (t_force, t_force_end), tok);
                r.trace.push(thermo);
            }

            if let Some(o) = &self.obs {
                o.rounds.inc();
                o.steps.add(admitted.len() as u64);
                o.fused_gemms.add(stats.fused_gemms);
                o.fused_rows.add(stats.fused_rows);
                if let Some(h) = &o.occupancy {
                    h.record(admitted.len() as u64);
                }
            }
        }
    }

    /// Step every replica to its target one at a time through the solo
    /// engine path — the determinism reference and the bench baseline the
    /// batched path is compared against.
    pub fn run_sequential(&mut self) -> u64 {
        let mut steps = 0u64;
        for r in &mut self.replicas {
            while !r.finished() {
                let thermo = r.sim.step();
                r.trace.push(thermo);
                steps += 1;
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_bounds_contain_cap_and_fleet_exactly() {
        assert_eq!(occupancy_bounds(Some(3), 5), vec![1, 2, 3, 4, 5, 8, 16, 32]);
        assert_eq!(occupancy_bounds(None, 8), vec![1, 2, 4, 8, 16, 32]);
        // A cap on a ladder edge must not produce duplicate bounds.
        assert_eq!(occupancy_bounds(Some(8), 8), vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(occupancy_bounds(Some(48), 64), vec![1, 2, 4, 8, 16, 32, 48, 64]);
    }
}
