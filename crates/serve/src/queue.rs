//! Admission control: the typed in-flight cap, priority classes, and the
//! admission queue the continuous scheduler drains each round.
//!
//! Everything here is deterministic by construction: ordering keys are
//! integers only (priority rank, deadline round, arrival sequence), so two
//! runs of the same schedule admit tenants in exactly the same order.

use std::num::NonZeroUsize;
use std::str::FromStr;

/// How many replicas/tenants may share a fused round.
///
/// This replaces the old `max_in_flight == 0` sentinel, which silently meant
/// "unlimited" and let a typo'd or negative CLI value turn the bound off.
/// `All` is now spelled out, and every bounded cap is non-zero by type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InFlightCap {
    /// No bound: every runnable tenant is admitted each round.
    #[default]
    All,
    /// At most this many tenants share a fused round (backpressure: the
    /// rest wait in the admission queue).
    AtMost(NonZeroUsize),
}

impl InFlightCap {
    /// The cap as a plain admission bound (`usize::MAX` for [`All`]).
    ///
    /// [`All`]: InFlightCap::All
    pub fn bound(&self) -> usize {
        match self {
            InFlightCap::All => usize::MAX,
            InFlightCap::AtMost(n) => n.get(),
        }
    }

    /// The bounded value, if any.
    pub fn limit(&self) -> Option<usize> {
        match self {
            InFlightCap::All => None,
            InFlightCap::AtMost(n) => Some(n.get()),
        }
    }

    /// Lossless upgrade of the legacy count convention (`0` = unlimited),
    /// kept for [`BatchScheduler::max_in_flight`] compatibility.
    ///
    /// [`BatchScheduler::max_in_flight`]: crate::BatchScheduler::max_in_flight
    pub fn from_legacy_count(k: usize) -> Self {
        match NonZeroUsize::new(k) {
            Some(n) => InFlightCap::AtMost(n),
            None => InFlightCap::All,
        }
    }
}

impl FromStr for InFlightCap {
    type Err = String;

    /// Accepts `all` / `unbounded` or a positive count. `0` and negative
    /// counts are rejected with an explanation instead of silently meaning
    /// "unlimited" (the old sentinel bug).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("all") || t.eq_ignore_ascii_case("unbounded") {
            return Ok(InFlightCap::All);
        }
        if t.starts_with('-') {
            return Err(format!(
                "in-flight cap '{t}' is negative; use a positive count or 'all'"
            ));
        }
        match t.parse::<usize>() {
            Ok(0) => Err("in-flight cap 0 would admit nothing; use 'all' for no cap".into()),
            Ok(n) => Ok(InFlightCap::AtMost(NonZeroUsize::new(n).unwrap())),
            Err(_) => Err(format!(
                "invalid in-flight cap '{t}': expected a positive count or 'all'"
            )),
        }
    }
}

impl std::fmt::Display for InFlightCap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InFlightCap::All => write!(f, "all"),
            InFlightCap::AtMost(n) => write!(f, "{n}"),
        }
    }
}

/// Scheduling class of a tenant. Lower rank admits first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Admitted before everything else (steered/interactive trajectories).
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Fills whatever slots the other classes leave free.
    Batch,
}

impl Priority {
    /// Ordering rank (0 admits first).
    pub fn rank(&self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }
}

impl FromStr for Priority {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interactive" => Ok(Priority::Interactive),
            "standard" => Ok(Priority::Standard),
            "batch" => Ok(Priority::Batch),
            other => Err(format!(
                "unknown priority '{other}' (use interactive | standard | batch)"
            )),
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Interactive => write!(f, "interactive"),
            Priority::Standard => write!(f, "standard"),
            Priority::Batch => write!(f, "batch"),
        }
    }
}

/// A tenant waiting for admission.
#[derive(Clone, Copy, Debug)]
pub struct QueueEntry {
    /// Tenant index in the scheduler's tenant table.
    pub tenant: usize,
    /// Scheduling class.
    pub priority: Priority,
    /// Finish-by round (earliest deadline admits first within a class).
    pub deadline: Option<u64>,
    /// Round the entry joined the queue.
    pub enqueued_round: u64,
    /// Monotone arrival sequence — the deterministic tie-break.
    pub seq: u64,
}

impl QueueEntry {
    /// Total admission order: class rank, then earliest deadline, then
    /// arrival order. All-integer, so deterministic across runs.
    fn key(&self) -> (u8, u64, u64) {
        (self.priority.rank(), self.deadline.unwrap_or(u64::MAX), self.seq)
    }
}

/// Admission was refused. This is the service's *typed* backpressure — the
/// caller decides whether to drop, retry later, or surface the rejection —
/// rather than a panic or a silently unbounded queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The waiting queue is at capacity.
    Backpressure {
        /// The configured queue capacity.
        capacity: usize,
        /// Entries already waiting.
        waiting: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Backpressure { capacity, waiting } => write!(
                f,
                "admission queue full ({waiting}/{capacity} waiting); retry after a round drains"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// The waiting room between `attach` and a fused round: bounded, priority-
/// ordered, deterministic.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    waiting: Vec<QueueEntry>,
    next_seq: u64,
}

impl AdmissionQueue {
    /// Queue holding at most `capacity` waiting entries.
    pub fn bounded(capacity: usize) -> Self {
        AdmissionQueue { capacity, waiting: Vec::new(), next_seq: 0 }
    }

    /// Queue with no waiting bound.
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// Entries currently waiting.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// The configured waiting bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add a tenant to the waiting set, or refuse with typed backpressure
    /// if the queue is full. Returns the entry's arrival sequence number.
    pub fn enqueue(
        &mut self,
        tenant: usize,
        priority: Priority,
        deadline: Option<u64>,
        round: u64,
    ) -> Result<u64, AdmitError> {
        if self.waiting.len() >= self.capacity {
            return Err(AdmitError::Backpressure {
                capacity: self.capacity,
                waiting: self.waiting.len(),
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.waiting.push(QueueEntry { tenant, priority, deadline, enqueued_round: round, seq });
        Ok(seq)
    }

    /// Drain up to `slots` entries in admission order (priority class, then
    /// earliest deadline, then arrival sequence) into `out`.
    pub fn admit_up_to(&mut self, slots: usize, out: &mut Vec<QueueEntry>) {
        if slots == 0 || self.waiting.is_empty() {
            return;
        }
        self.waiting.sort_unstable_by_key(QueueEntry::key);
        let take = slots.min(self.waiting.len());
        out.extend(self.waiting.drain(..take));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_parses_counts_and_all() {
        assert_eq!("all".parse::<InFlightCap>().unwrap(), InFlightCap::All);
        assert_eq!("Unbounded".parse::<InFlightCap>().unwrap(), InFlightCap::All);
        assert_eq!("3".parse::<InFlightCap>().unwrap().bound(), 3);
        assert_eq!(InFlightCap::All.bound(), usize::MAX);
    }

    #[test]
    fn cap_rejects_zero_and_negative_with_clear_errors() {
        let zero = "0".parse::<InFlightCap>().unwrap_err();
        assert!(zero.contains("admit nothing"), "{zero}");
        let neg = "-2".parse::<InFlightCap>().unwrap_err();
        assert!(neg.contains("negative"), "{neg}");
        let junk = "many".parse::<InFlightCap>().unwrap_err();
        assert!(junk.contains("positive count or 'all'"), "{junk}");
    }

    #[test]
    fn legacy_count_maps_zero_to_all() {
        assert_eq!(InFlightCap::from_legacy_count(0), InFlightCap::All);
        assert_eq!(InFlightCap::from_legacy_count(5).bound(), 5);
    }

    #[test]
    fn queue_admits_by_class_then_deadline_then_arrival() {
        let mut q = AdmissionQueue::unbounded();
        q.enqueue(0, Priority::Batch, None, 1).unwrap();
        q.enqueue(1, Priority::Standard, Some(9), 1).unwrap();
        q.enqueue(2, Priority::Standard, Some(4), 1).unwrap();
        q.enqueue(3, Priority::Interactive, None, 1).unwrap();
        q.enqueue(4, Priority::Standard, None, 1).unwrap();
        let mut out = Vec::new();
        q.admit_up_to(4, &mut out);
        let ids: Vec<usize> = out.iter().map(|e| e.tenant).collect();
        assert_eq!(ids, vec![3, 2, 1, 4], "class, then EDF, then arrival");
        assert_eq!(q.len(), 1, "batch-class tenant 0 waits");
    }

    #[test]
    fn full_queue_rejects_with_typed_backpressure() {
        let mut q = AdmissionQueue::bounded(2);
        q.enqueue(0, Priority::Standard, None, 1).unwrap();
        q.enqueue(1, Priority::Standard, None, 1).unwrap();
        let err = q.enqueue(2, Priority::Interactive, None, 1).unwrap_err();
        assert_eq!(err, AdmitError::Backpressure { capacity: 2, waiting: 2 });
        assert!(err.to_string().contains("admission queue full"));
    }
}
