//! Deterministic arrival scripts for the continuous scheduler.
//!
//! Wall clocks are banned on deterministic paths (analyzer rule D4), so the
//! service cannot be driven by "whenever requests happen to show up".
//! Instead an [`ArrivalScript`] derives every tenant's arrival round from a
//! seed (plus explicit overrides), giving a schedule that replays
//! bit-identically — which is what lets CI assert trajectories.
//!
//! Format: `;`-separated clauses, e.g.
//! `"seed=7;tenants=6;steps=10;window=4;prio=0:interactive;deadline=0@8;pause=2@3+2;queue=4"`.
//!
//! | clause | meaning |
//! |---|---|
//! | `seed=S` | schedule seed (default 0) |
//! | `tenants=N` | tenant count (default 4) |
//! | `steps=K` | steps per tenant (default 10) |
//! | `window=W` | arrivals hash into rounds `1..=W` (default 4) |
//! | `queue=N` | admission-queue capacity (default unbounded) |
//! | `at=ID@R` | pin tenant ID's arrival to round R |
//! | `prio=ID:C` | priority class (`interactive`/`standard`/`batch`) |
//! | `deadline=ID@R` | tenant ID should finish by round R (EDF key) |
//! | `pause=ID@R+K` | detach tenant ID at round R, re-enqueue at R+K |

use crate::queue::Priority;
use crate::tenant::TenantSpec;

/// SplitMix64 — the schedule hash. Self-contained so scripts never depend
/// on RNG crate internals.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parsed, fully deterministic arrival schedule.
#[derive(Clone, Debug)]
pub struct ArrivalScript {
    /// Schedule seed (arrival rounds hash off this).
    pub seed: u64,
    /// Number of tenants.
    pub tenants: usize,
    /// Steps per tenant.
    pub steps: u64,
    /// Arrivals land in rounds `1..=window` unless pinned with `at=`.
    pub window: u64,
    /// Admission-queue capacity (`usize::MAX` = unbounded).
    pub queue_capacity: usize,
    /// `at=ID@R` overrides.
    pub arrival_overrides: Vec<(usize, u64)>,
    /// `prio=ID:C` overrides.
    pub priorities: Vec<(usize, Priority)>,
    /// `deadline=ID@R` entries.
    pub deadlines: Vec<(usize, u64)>,
    /// `pause=ID@R+K` entries, stored as `(id, pause_round, resume_round)`.
    pub pauses: Vec<(usize, u64, u64)>,
}

impl Default for ArrivalScript {
    fn default() -> Self {
        ArrivalScript {
            seed: 0,
            tenants: 4,
            steps: 10,
            window: 4,
            queue_capacity: usize::MAX,
            arrival_overrides: Vec::new(),
            priorities: Vec::new(),
            deadlines: Vec::new(),
            pauses: Vec::new(),
        }
    }
}

/// Split `"ID@R"`.
fn parse_at(v: &str, clause: &str) -> Result<(usize, u64), String> {
    let (id, r) = v.split_once('@').ok_or_else(|| format!("{clause}: expected ID@R, got '{v}'"))?;
    let id = id.parse().map_err(|_| format!("{clause}: bad tenant id '{id}'"))?;
    let r = r.parse().map_err(|_| format!("{clause}: bad round '{r}'"))?;
    Ok((id, r))
}

impl ArrivalScript {
    /// Parse a `;`-separated script spec (see the module docs for the
    /// clause table). Unknown clauses and malformed values are errors.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut s = ArrivalScript::default();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, val) =
                clause.split_once('=').ok_or_else(|| format!("clause '{clause}' has no '='"))?;
            match key.trim() {
                "seed" => s.seed = val.parse().map_err(|_| format!("seed: bad value '{val}'"))?,
                "tenants" => {
                    s.tenants =
                        val.parse().map_err(|_| format!("tenants: bad value '{val}'"))?;
                    if s.tenants == 0 {
                        return Err("tenants: must be at least 1".into());
                    }
                }
                "steps" => {
                    s.steps = val.parse().map_err(|_| format!("steps: bad value '{val}'"))?;
                    if s.steps == 0 {
                        return Err("steps: must be at least 1".into());
                    }
                }
                "window" => {
                    s.window = val.parse().map_err(|_| format!("window: bad value '{val}'"))?;
                    if s.window == 0 {
                        return Err("window: must be at least 1".into());
                    }
                }
                "queue" => {
                    s.queue_capacity =
                        val.parse().map_err(|_| format!("queue: bad value '{val}'"))?;
                    if s.queue_capacity == 0 {
                        return Err("queue: capacity 0 would reject everything".into());
                    }
                }
                "at" => s.arrival_overrides.push(parse_at(val, "at")?),
                "prio" => {
                    let (id, class) = val
                        .split_once(':')
                        .ok_or_else(|| format!("prio: expected ID:class, got '{val}'"))?;
                    let id = id.parse().map_err(|_| format!("prio: bad tenant id '{id}'"))?;
                    s.priorities.push((id, class.parse()?));
                }
                "deadline" => s.deadlines.push(parse_at(val, "deadline")?),
                "pause" => {
                    let (id, rest) = val
                        .split_once('@')
                        .ok_or_else(|| format!("pause: expected ID@R+K, got '{val}'"))?;
                    let (r, k) = rest
                        .split_once('+')
                        .ok_or_else(|| format!("pause: expected ID@R+K, got '{val}'"))?;
                    let id = id.parse().map_err(|_| format!("pause: bad tenant id '{id}'"))?;
                    let r: u64 = r.parse().map_err(|_| format!("pause: bad round '{r}'"))?;
                    let k: u64 = k.parse().map_err(|_| format!("pause: bad duration '{k}'"))?;
                    if k == 0 {
                        return Err("pause: duration must be at least 1 round".into());
                    }
                    s.pauses.push((id, r, r + k));
                }
                other => return Err(format!("unknown clause '{other}'")),
            }
        }
        for id in s
            .arrival_overrides
            .iter()
            .map(|e| e.0)
            .chain(s.priorities.iter().map(|e| e.0))
            .chain(s.deadlines.iter().map(|e| e.0))
            .chain(s.pauses.iter().map(|e| e.0))
        {
            if id >= s.tenants {
                return Err(format!("tenant id {id} out of range (tenants={})", s.tenants));
            }
        }
        Ok(s)
    }

    /// The round tenant `id` arrives in: an `at=` override if present,
    /// otherwise `1 + splitmix64(seed, id) % window`.
    pub fn arrival_round(&self, id: usize) -> u64 {
        if let Some(&(_, r)) = self.arrival_overrides.iter().find(|(i, _)| *i == id) {
            return r;
        }
        1 + splitmix64(self.seed ^ (id as u64 + 1)) % self.window
    }

    /// The full spec for tenant `id`.
    pub fn spec(&self, id: usize) -> TenantSpec {
        TenantSpec {
            id,
            steps: self.steps,
            priority: self
                .priorities
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, p)| *p)
                .unwrap_or_default(),
            deadline: self.deadlines.iter().find(|(i, _)| *i == id).map(|(_, d)| *d),
            pause: self.pauses.iter().find(|(i, _, _)| *i == id).map(|(_, r, k)| (*r, *k)),
        }
    }

    /// All tenant specs with their arrival rounds, sorted by
    /// `(arrival_round, id)` — the deterministic attach order.
    pub fn schedule(&self) -> Vec<(u64, TenantSpec)> {
        let mut v: Vec<(u64, TenantSpec)> =
            (0..self.tenants).map(|id| (self.arrival_round(id), self.spec(id))).collect();
        v.sort_by_key(|(r, s)| (*r, s.id));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_clause_set() {
        let s = ArrivalScript::parse(
            "seed=7;tenants=6;steps=12;window=3;queue=4;at=2@5;prio=0:interactive;deadline=0@8;pause=1@3+2",
        )
        .unwrap();
        assert_eq!((s.seed, s.tenants, s.steps, s.window, s.queue_capacity), (7, 6, 12, 3, 4));
        assert_eq!(s.arrival_round(2), 5, "at= pins the arrival");
        assert_eq!(s.spec(0).priority, Priority::Interactive);
        assert_eq!(s.spec(0).deadline, Some(8));
        assert_eq!(s.spec(1).pause, Some((3, 5)));
        assert_eq!(s.spec(3).priority, Priority::Standard);
    }

    #[test]
    fn arrivals_are_seeded_and_replayable() {
        let a = ArrivalScript::parse("seed=11;tenants=8;window=5").unwrap();
        let b = ArrivalScript::parse("seed=11;tenants=8;window=5").unwrap();
        let c = ArrivalScript::parse("seed=12;tenants=8;window=5").unwrap();
        let rounds = |s: &ArrivalScript| (0..8).map(|i| s.arrival_round(i)).collect::<Vec<_>>();
        assert_eq!(rounds(&a), rounds(&b), "same seed replays");
        assert_ne!(rounds(&a), rounds(&c), "seed changes the schedule");
        assert!(rounds(&a).iter().all(|&r| (1..=5).contains(&r)), "inside the window");
    }

    #[test]
    fn rejects_malformed_and_out_of_range_clauses() {
        assert!(ArrivalScript::parse("bogus=1").unwrap_err().contains("unknown clause"));
        assert!(ArrivalScript::parse("at=9@1;tenants=4").unwrap_err().contains("out of range"));
        assert!(ArrivalScript::parse("queue=0").unwrap_err().contains("reject everything"));
        assert!(ArrivalScript::parse("pause=0@2+0").unwrap_err().contains("at least 1 round"));
        assert!(ArrivalScript::parse("prio=0:urgent").unwrap_err().contains("unknown priority"));
    }

    #[test]
    fn schedule_is_sorted_by_arrival_then_id() {
        let s = ArrivalScript::parse("seed=3;tenants=6;window=4").unwrap();
        let sched = s.schedule();
        assert_eq!(sched.len(), 6);
        for w in sched.windows(2) {
            assert!((w[0].0, w[0].1.id) < (w[1].0, w[1].1.id));
        }
    }
}
