//! The continuous-batching MD service: a long-running scheduler where
//! tenants attach and detach mid-flight, ordered by priority class and
//! deadline, with typed backpressure at the admission queue.
//!
//! The LLM-serving insight transplanted to MD: a fixed round-robin loop
//! lets the fused GEMMs drain as replicas finish, while continuous batching
//! refills the batch every round from an admission queue, keeping the
//! stacked fitting-net GEMMs tall for the whole run. Time is a **logical
//! round counter** — wall clocks are banned on deterministic paths
//! (analyzer rule D4), so arrivals, deadlines, and pauses are all specified
//! in rounds (see [`crate::script`]).
//!
//! **Determinism guarantee (the hard bar):** every tenant's trajectory is
//! bit-identical to the same seed stepped solo, regardless of when it
//! attached, who shared its fused rounds, its priority class, or the
//! in-flight cap. Scheduling changes *when* a tenant's GEMM rows run,
//! never *what* they compute. Enforced by `tests/serve_continuous.rs`.

use std::sync::Arc;

use deepmd::batch::{BatchJob, BatchWorkspace};
use deepmd::engine::DpEngine;
use dpmd_core::EngineParts;
use dpmd_obs::{Counter, Gauge, Histogram, MetricsRegistry, Unit};
use minimd::sim::{Simulation, StepInFlight};
use minimd::vec3::Vec3;

use crate::queue::{AdmissionQueue, AdmitError, InFlightCap, QueueEntry};
use crate::scheduler::occupancy_bounds;
use crate::script::ArrivalScript;
use crate::tenant::{Tenant, TenantObs, TenantSpec, TenantState};
use crate::SharedDp;

/// Metric handles for the continuous service (`serve.cont.*`,
/// `serve.queue.*`; per-tenant counters live on each [`Tenant`]).
struct ContObs {
    reg: MetricsRegistry,
    rounds: Counter,
    steps: Counter,
    fused_gemms: Counter,
    fused_rows: Counter,
    admissions: Counter,
    rejections: Counter,
    detaches: Counter,
    deadline_missed: Counter,
    queue_depth: Gauge,
    queue_wait: Histogram,
    /// Registered lazily on the first tick, once the cap is known (the
    /// registry fixes histogram bounds at first registration).
    occupancy: Option<Histogram>,
}

/// Outcome of driving a full [`ArrivalScript`] to completion.
#[derive(Clone, Debug)]
pub struct ScriptOutcome {
    /// Logical rounds the service ran.
    pub rounds: u64,
    /// Tenant ids whose scripted arrival was refused by queue backpressure
    /// (dropped, per script semantics — the typed-rejection path).
    pub rejected: Vec<usize>,
}

/// The long-running multi-tenant scheduler.
pub struct ContinuousScheduler {
    engine: Arc<DpEngine>,
    parts: EngineParts,
    base_seed: u64,
    cap: InFlightCap,
    queue: AdmissionQueue,
    tenants: Vec<Tenant>,
    /// Tenant indices currently in the fused batch, sorted ascending (the
    /// canonical fused-job order).
    running: Vec<usize>,
    round: u64,
    workspace: BatchWorkspace,
    obs: Option<ContObs>,
    // Tick scratch, allocated once here and reused every round.
    admit_scratch: Vec<QueueEntry>,
    toks: Vec<StepInFlight>,
    force_bufs: Vec<Vec<Vec3>>,
    finished_scratch: Vec<usize>,
    init_scratch: Vec<usize>,
}

impl ContinuousScheduler {
    /// An empty service over one shared engine built from `parts`. Tenant
    /// `id` will draw its initial state from seed `parts.seed + id` —
    /// the same mapping as [`crate::BatchScheduler`], so solo references
    /// are directly comparable.
    pub fn new(parts: EngineParts, cap: InFlightCap, queue_capacity: usize) -> Self {
        let mut dp = DpEngine::new(parts.model.clone(), parts.precision);
        if let Some(n) = parts.threads {
            dp = dp.with_pool(Arc::new(dpmd_threads::ThreadPool::new(n)));
        }
        if let Some((reg, _)) = &parts.obs {
            dp.attach_obs(reg);
        }
        let obs = parts.obs.as_ref().map(|(reg, _)| ContObs {
            reg: reg.clone(),
            rounds: reg.counter("serve.cont.rounds", Unit::Count),
            steps: reg.counter("serve.cont.steps", Unit::Count),
            fused_gemms: reg.counter("serve.cont.gemm.fused", Unit::Count),
            fused_rows: reg.counter("serve.cont.gemm.fused_rows", Unit::Count),
            admissions: reg.counter("serve.cont.admissions", Unit::Count),
            rejections: reg.counter("serve.cont.rejections", Unit::Count),
            detaches: reg.counter("serve.cont.detaches", Unit::Count),
            deadline_missed: reg.counter("serve.cont.deadline_missed", Unit::Count),
            queue_depth: reg.gauge("serve.queue.depth", Unit::Count),
            queue_wait: reg.histogram(
                "serve.queue.wait_rounds",
                Unit::Count,
                &[0, 1, 2, 4, 8, 16, 32],
            ),
            occupancy: None,
        });
        let base_seed = parts.seed;
        ContinuousScheduler {
            engine: Arc::new(dp),
            parts,
            base_seed,
            cap,
            queue: if queue_capacity == usize::MAX {
                AdmissionQueue::unbounded()
            } else {
                AdmissionQueue::bounded(queue_capacity)
            },
            tenants: Vec::new(),
            running: Vec::new(),
            round: 0,
            workspace: BatchWorkspace::new(),
            obs,
            admit_scratch: Vec::new(),
            toks: Vec::new(),
            force_bufs: Vec::new(),
            finished_scratch: Vec::new(),
            init_scratch: Vec::new(),
        }
    }

    /// The logical round clock (ticks completed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// All tenants ever attached, in attach order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Tenants waiting for admission right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Attach a new tenant: build its simulation from the shared parts
    /// (seed `base + spec.id`) and enqueue it for admission at the next
    /// tick. Refused with typed [`AdmitError::Backpressure`] — not a panic,
    /// and no tenant state is created — when the admission queue is full.
    pub fn attach(&mut self, spec: TenantSpec) -> Result<usize, AdmitError> {
        let idx = self.tenants.len();
        if let Err(e) = self.queue.enqueue(idx, spec.priority, spec.deadline, self.round + 1) {
            if let Some(o) = &self.obs {
                o.rejections.inc();
            }
            return Err(e);
        }
        self.parts.seed = self.base_seed + spec.id as u64;
        let (bx, atoms) = self.parts.initial_state();
        let vv = self.parts.integrator();
        // Deferred construction: the initial force evaluation happens in
        // the tenant's first admitted round, fused with every other
        // newcomer's — even initialization rides the batched GEMMs.
        let mut sim = Simulation::new_deferred(
            bx,
            atoms,
            Box::new(SharedDp(Arc::clone(&self.engine))),
            vv,
            2.0,
            50,
        );
        if let Some((reg, trace)) = &self.parts.obs {
            sim.attach_obs(reg, trace);
        }
        let obs = self.obs.as_ref().map(|o| TenantObs::register(&o.reg, spec.id));
        self.tenants.push(Tenant {
            id: spec.id,
            seed: self.parts.seed,
            priority: spec.priority,
            deadline: spec.deadline,
            pause: spec.pause,
            arrival_round: self.round + 1,
            admitted_round: None,
            queue_wait_rounds: 0,
            state: TenantState::Queued,
            target_steps: spec.steps,
            sim,
            trace: Vec::with_capacity(spec.steps as usize),
            needs_init: true,
            obs,
        });
        Ok(idx)
    }

    /// Advance the service one logical round: resume due pauses, detach
    /// scripted pauses, admit from the queue up to the in-flight cap, run
    /// one fused step over the running set, and retire finished tenants.
    /// Returns the number of tenants stepped this round (0 for an idle
    /// round — which records no occupancy sample).
    pub fn tick(&mut self) -> usize {
        self.round += 1;
        let round = self.round;
        if let Some(o) = &mut self.obs {
            if o.occupancy.is_none() {
                let bounds = occupancy_bounds(self.cap.limit(), self.tenants.len()); // dpmd-allow D5: one-time registration on the first tick
                o.occupancy =
                    Some(o.reg.histogram("serve.cont.occupancy", Unit::Count, &bounds));
            }
        }

        // (1) Paused tenants whose window expired re-enter the queue (in
        // tenant-index order — deterministic). A full queue leaves them
        // paused to retry next round.
        for idx in 0..self.tenants.len() {
            if let TenantState::Paused { resume_round } = self.tenants[idx].state {
                if resume_round <= round {
                    let (prio, deadline) =
                        (self.tenants[idx].priority, self.tenants[idx].deadline);
                    match self.queue.enqueue(idx, prio, deadline, round) {
                        Ok(_) => self.tenants[idx].state = TenantState::Queued,
                        Err(_) => {
                            if let Some(o) = &self.obs {
                                o.rejections.inc();
                            }
                            self.tenants[idx].state =
                                TenantState::Paused { resume_round: round + 1 };
                        }
                    }
                }
            }
        }

        // (2) Scripted pauses detach mid-flight before admission, so the
        // freed slot is available this same round.
        let mut i = 0;
        while i < self.running.len() {
            let idx = self.running[i];
            let t = &mut self.tenants[idx];
            if let Some((pause_round, resume_round)) = t.pause {
                if pause_round == round && !t.finished() {
                    t.state = TenantState::Paused { resume_round };
                    self.running.swap_remove(i);
                    if let Some(o) = &self.obs {
                        o.detaches.inc();
                    }
                    continue;
                }
            }
            i += 1;
        }

        // (3) Admission: fill free slots in (priority, deadline, arrival)
        // order.
        let free = self.cap.bound().saturating_sub(self.running.len());
        self.admit_scratch.clear();
        self.queue.admit_up_to(free, &mut self.admit_scratch);
        for e in &self.admit_scratch {
            let t = &mut self.tenants[e.tenant];
            t.state = TenantState::Running;
            if t.admitted_round.is_none() {
                t.admitted_round = Some(round);
            }
            let wait = round - e.enqueued_round;
            t.queue_wait_rounds += wait;
            if let Some(o) = &self.obs {
                o.admissions.inc();
                o.queue_wait.record(wait);
            }
            if let Some(to) = &t.obs {
                to.queue_wait.add(wait);
            }
            self.running.push(e.tenant);
        }
        // Canonical fused-job order: ascending tenant index. The fused
        // batch is row-independent, so this is presentation-only — but a
        // fixed order keeps profiles and traces replayable.
        self.running.sort_unstable();
        if let Some(o) = &self.obs {
            o.rounds.inc();
            o.queue_depth.set(self.queue.len() as u64);
        }
        if self.running.is_empty() {
            // Idle round (waiting on arrivals or resumes): no occupancy
            // sample — zero-admission rounds never reach the histogram.
            return 0;
        }
        let stepped = self.running.len();

        // Phase A0: newcomers' initial force evaluations, one fused call.
        // `new_deferred` left their force arrays zeroed; the fused
        // evaluation is bit-identical to the solo evaluation
        // `Simulation::new` would have run, so even initialization rides
        // the batched GEMMs without touching the determinism bar.
        self.init_scratch.clear();
        for &idx in &self.running {
            if self.tenants[idx].needs_init {
                self.init_scratch.push(idx);
            }
        }
        if !self.init_scratch.is_empty() {
            for &idx in &self.init_scratch {
                let t = &mut self.tenants[idx];
                let mut f = std::mem::take(&mut t.sim.atoms.force);
                f.fill(Vec3::ZERO);
                self.force_bufs.push(f);
            }
            let (outs, stats) = {
                let tenants = &self.tenants;
                let mut jobs: Vec<BatchJob<'_>> = self
                    .init_scratch
                    .iter()
                    .zip(self.force_bufs.iter_mut())
                    .map(|(&idx, forces)| {
                        let sim = &tenants[idx].sim;
                        BatchJob { atoms: &sim.atoms, nl: &sim.nl, bx: &sim.bx, forces }
                    })
                    .collect(); // dpmd-allow D5: per-round borrow of the newcomers; cannot be stored across rounds
                self.engine.energy_forces_batched_with(&mut jobs, &mut self.workspace)
            };
            for ((&idx, buf), out) in
                self.init_scratch.iter().zip(self.force_bufs.drain(..)).zip(outs)
            {
                let t = &mut self.tenants[idx];
                t.sim.atoms.force = buf;
                t.sim.initialize_forces(out);
                t.needs_init = false;
            }
            if let Some(o) = &self.obs {
                o.fused_gemms.add(stats.fused_gemms);
                o.fused_rows.add(stats.fused_rows);
            }
        }

        // Phase A: first Verlet half + neighbour maintenance per tenant;
        // force buffers leave the atom arrays so the batch jobs can borrow
        // the simulations immutably.
        for &idx in &self.running {
            let t = &mut self.tenants[idx];
            self.toks.push(t.sim.begin_step());
            let mut f = std::mem::take(&mut t.sim.atoms.force);
            f.fill(Vec3::ZERO);
            self.force_bufs.push(f);
        }

        // Phase B: one fused force evaluation over the whole running set.
        let t_force = dpmd_obs::clock::wall_now();
        let (outs, stats) = {
            let tenants = &self.tenants;
            let mut jobs: Vec<BatchJob<'_>> = self
                .running
                .iter()
                .zip(self.force_bufs.iter_mut())
                .map(|(&idx, forces)| {
                    let sim = &tenants[idx].sim;
                    BatchJob { atoms: &sim.atoms, nl: &sim.nl, bx: &sim.bx, forces }
                })
                .collect(); // dpmd-allow D5: per-round borrow of the tenants; cannot be stored across rounds
            self.engine.energy_forces_batched_with(&mut jobs, &mut self.workspace)
        };
        let t_force_end = dpmd_obs::clock::wall_now();

        // Phase C: restore forces, complete steps, retire finished tenants.
        self.finished_scratch.clear();
        for (((&idx, tok), buf), out) in self
            .running
            .iter()
            .zip(self.toks.drain(..))
            .zip(self.force_bufs.drain(..))
            .zip(outs)
        {
            let t = &mut self.tenants[idx];
            t.sim.atoms.force = buf;
            let thermo = t.sim.complete_step(out, stats.phases, (t_force, t_force_end), tok);
            t.trace.push(thermo);
            if let Some(to) = &t.obs {
                to.steps.inc();
            }
            if t.finished() {
                t.state = TenantState::Finished { round };
                self.finished_scratch.push(idx);
            }
        }
        for &idx in &self.finished_scratch {
            if let Some(pos) = self.running.iter().position(|&r| r == idx) {
                self.running.swap_remove(pos);
            }
            if let Some(o) = &self.obs {
                o.detaches.inc();
                if self.tenants[idx].missed_deadline() {
                    o.deadline_missed.inc();
                }
            }
        }

        if let Some(o) = &self.obs {
            o.steps.add(stepped as u64);
            o.fused_gemms.add(stats.fused_gemms);
            o.fused_rows.add(stats.fused_rows);
            if let Some(h) = &o.occupancy {
                h.record(stepped as u64);
            }
        }
        stepped
    }

    /// Whether every attached tenant has finished and nothing is queued or
    /// running.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
            && self.running.is_empty()
            && self.tenants.iter().all(|t| matches!(t.state, TenantState::Finished { .. }))
    }

    /// Drive a full [`ArrivalScript`]: attach each tenant at its scripted
    /// round, tick until every attached tenant finishes. A scripted arrival
    /// refused by queue backpressure is dropped and reported (the typed
    /// rejection is the point — nothing panics, nothing silently queues).
    pub fn run_script(&mut self, script: &ArrivalScript) -> ScriptOutcome {
        let schedule = script.schedule();
        let mut next = 0;
        let mut rejected = Vec::new();
        loop {
            let upcoming = self.round + 1;
            while next < schedule.len() && schedule[next].0 <= upcoming {
                let spec = schedule[next].1;
                if self.attach(spec).is_err() {
                    rejected.push(spec.id);
                }
                next += 1;
            }
            if next >= schedule.len() && self.idle() {
                return ScriptOutcome { rounds: self.round, rejected };
            }
            self.tick();
        }
    }
}
