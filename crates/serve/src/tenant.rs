//! Tenants: the continuous scheduler's unit of admission. A tenant wraps
//! one replica trajectory with its service-level state — priority class,
//! optional step deadline, arrival/admission bookkeeping, and an optional
//! scripted pause that detaches it mid-flight.

use dpmd_obs::{Counter, MetricsRegistry, Unit};
use minimd::sim::{Simulation, Thermo};

use crate::queue::Priority;

/// Everything needed to attach a tenant, minus the simulation itself
/// (which the scheduler builds from its engine parts at attach time).
#[derive(Clone, Copy, Debug)]
pub struct TenantSpec {
    /// Tenant id; also the seed offset (`parts.seed + id`), so a tenant is
    /// bit-comparable with the [`BatchScheduler`](crate::BatchScheduler)
    /// replica of the same id.
    pub id: usize,
    /// Steps the tenant wants in total.
    pub steps: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Finish-by round. Soft: a miss is counted, never enforced by
    /// cancellation. Also the EDF key within a priority class.
    pub deadline: Option<u64>,
    /// Scripted mid-flight detach: `(pause_round, resume_round)` — the
    /// tenant leaves the running set at `pause_round` and re-enters the
    /// admission queue at `resume_round`.
    pub pause: Option<(u64, u64)>,
}

impl TenantSpec {
    /// A standard-priority spec with no deadline or pause.
    pub fn new(id: usize, steps: u64) -> Self {
        TenantSpec { id, steps, priority: Priority::Standard, deadline: None, pause: None }
    }
}

/// Where a tenant currently is in the service lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// Waiting in the admission queue.
    Queued,
    /// Stepping in the fused batch.
    Running,
    /// Detached mid-flight; re-enqueues at `resume_round`.
    Paused {
        /// Round at which the tenant rejoins the admission queue.
        resume_round: u64,
    },
    /// All steps done.
    Finished {
        /// Round the final step completed in.
        round: u64,
    },
}

/// Per-tenant metric handles (registered at attach — not on the hot path).
pub(crate) struct TenantObs {
    pub(crate) steps: Counter,
    pub(crate) queue_wait: Counter,
}

impl TenantObs {
    pub(crate) fn register(reg: &MetricsRegistry, id: usize) -> Self {
        TenantObs {
            steps: reg.counter(&format!("serve.tenant.{id:03}.steps"), Unit::Count),
            queue_wait: reg
                .counter(&format!("serve.tenant.{id:03}.queue_wait_rounds"), Unit::Count),
        }
    }
}

/// One attached trajectory plus its service-level state.
pub struct Tenant {
    /// Tenant id (== seed offset; see [`TenantSpec::id`]).
    pub id: usize,
    /// The seed its initial state was drawn from (`parts.seed + id`).
    pub seed: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Finish-by round, if any.
    pub deadline: Option<u64>,
    /// Scripted pause window, if any.
    pub pause: Option<(u64, u64)>,
    /// Round the tenant joined the admission queue.
    pub arrival_round: u64,
    /// Round the tenant was first admitted to the running set.
    pub admitted_round: Option<u64>,
    /// Total rounds spent waiting in the queue (across re-queues).
    pub queue_wait_rounds: u64,
    /// Lifecycle state.
    pub state: TenantState,
    /// Steps this tenant should run in total.
    pub target_steps: u64,
    /// The underlying simulation.
    pub sim: Simulation,
    /// Thermo trace, one entry per completed step.
    pub trace: Vec<Thermo>,
    /// The sim was built deferred; its initial forces still need one
    /// (fused) evaluation before the first step.
    pub(crate) needs_init: bool,
    pub(crate) obs: Option<TenantObs>,
}

impl Tenant {
    /// Steps completed so far.
    pub fn done_steps(&self) -> u64 {
        self.trace.len() as u64
    }

    /// Whether the tenant has run every step it asked for.
    pub fn finished(&self) -> bool {
        self.done_steps() >= self.target_steps
    }

    /// Whether the tenant finished after its deadline (always `false`
    /// without a deadline or before finishing).
    pub fn missed_deadline(&self) -> bool {
        match (self.state, self.deadline) {
            (TenantState::Finished { round }, Some(d)) => round > d,
            _ => false,
        }
    }
}
