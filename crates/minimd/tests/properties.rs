//! Property-based tests for the MD substrate's geometric and physical
//! invariants.

use proptest::prelude::*;

use minimd::atoms::{copper_species, Atoms};
use minimd::domain::Decomposition;
use minimd::lattice::fcc_lattice;
use minimd::neighbor::{ListKind, NeighborList};
use minimd::potential::lj::LennardJones;
use minimd::potential::Potential;
use minimd::simbox::SimBox;
use minimd::vec3::Vec3;

fn coord() -> impl Strategy<Value = f64> {
    -100.0f64..100.0
}

proptest! {
    /// Wrapping always lands in the primary image and is idempotent.
    #[test]
    fn wrap_is_idempotent_and_contained(
        x in coord(), y in coord(), z in coord(),
        lx in 1.0f64..50.0, ly in 1.0f64..50.0, lz in 1.0f64..50.0,
    ) {
        let b = SimBox::new(lx, ly, lz);
        let w = b.wrap(Vec3::new(x, y, z));
        prop_assert!(b.contains(w), "{w:?} outside {b:?}");
        let w2 = b.wrap(w);
        prop_assert!((w - w2).norm() < 1e-9);
    }

    /// Wrapping never changes positions modulo the box: the minimum image
    /// of (original, wrapped) is zero.
    #[test]
    fn wrap_preserves_equivalence_class(
        x in coord(), y in coord(), z in coord(),
        l in 2.0f64..40.0,
    ) {
        let b = SimBox::cubic(l);
        let p = Vec3::new(x, y, z);
        let w = b.wrap(p);
        // Wrapping twice is a no-op, so w and wrap(w) are the same point;
        // the displacement between a point and its wrap is a lattice vector,
        // which min_image reduces to zero once both operands are in-box.
        let d = b.min_image(b.wrap(p), w);
        prop_assert!(d.norm() < 1e-6, "residual {d:?}");
    }

    /// Minimum-image displacement components never exceed half the box.
    #[test]
    fn min_image_is_at_most_half_box(
        ax in coord(), ay in coord(), az in coord(),
        bx_ in coord(), by in coord(), bz in coord(),
        l in 2.0f64..40.0,
    ) {
        let b = SimBox::cubic(l);
        // min_image's contract requires in-box operands (see its docs).
        let d = b.min_image(b.wrap(Vec3::new(ax, ay, az)), b.wrap(Vec3::new(bx_, by, bz)));
        for k in 0..3 {
            prop_assert!(d[k].abs() <= l / 2.0 + 1e-9, "axis {k}: {}", d[k]);
        }
    }

    /// Neighbour lists are symmetric: j ∈ N(i) ⇔ i ∈ N(j) (full lists over
    /// local atoms with no ghosts).
    #[test]
    fn full_neighbor_list_is_symmetric(cells in 3usize..5, a in 4.0f64..6.0) {
        let (bx, atoms) = fcc_lattice(cells, cells, cells, a);
        let rc = (a * 0.9).min(bx.lengths().x / 2.0 - 0.5);
        let mut nl = NeighborList::new(rc, 0.3, ListKind::Full);
        nl.build(&atoms, &bx);
        for i in 0..atoms.nlocal {
            for &j in nl.neighbors(i) {
                let back = nl.neighbors(j as usize);
                prop_assert!(back.contains(&(i as u32)), "pair ({i},{j}) asymmetric");
            }
        }
    }

    /// LJ forces are translation invariant: rigidly shifting all atoms
    /// (with wrap) leaves forces unchanged.
    #[test]
    fn lj_forces_translation_invariant(
        sx in -5.0f64..5.0, sy in -5.0f64..5.0, sz in -5.0f64..5.0,
    ) {
        let lj = LennardJones::new(0.01, 3.0, 7.0);
        let (bx, mut a1) = fcc_lattice(4, 4, 4, 4.2);
        // Perturb deterministically for non-zero forces.
        for (k, p) in a1.pos.iter_mut().enumerate() {
            p.x += 0.1 * ((k % 5) as f64 - 2.0) / 2.0;
            *p = bx.wrap(*p);
        }
        let mut a2 = a1.clone();
        for p in &mut a2.pos {
            *p = bx.wrap(*p + Vec3::new(sx, sy, sz));
        }
        let mut nl = NeighborList::new(7.0, 0.5, ListKind::Full);
        nl.build(&a1, &bx);
        a1.zero_forces();
        let e1 = lj.compute(&mut a1, &nl, &bx).energy;
        nl.build(&a2, &bx);
        a2.zero_forces();
        let e2 = lj.compute(&mut a2, &nl, &bx).energy;
        prop_assert!((e1 - e2).abs() < 1e-8, "{e1} vs {e2}");
        for i in 0..a1.nlocal {
            prop_assert!((a1.force[i] - a2.force[i]).norm() < 1e-8, "atom {i}");
        }
    }

    /// Domain decomposition: every wrapped point belongs to exactly the
    /// rank whose box contains it, and rank ↔ node mappings are consistent.
    #[test]
    fn decomposition_owns_every_point(
        x in coord(), y in coord(), z in coord(),
        nx in 1usize..5, ny in 1usize..5, nz in 1usize..5,
    ) {
        let d = Decomposition::new(SimBox::new(20.0, 24.0, 28.0), [nx, ny, nz]);
        let p = d.bx.wrap(Vec3::new(x, y, z));
        let r = d.rank_of_pos(p);
        prop_assert!(r < d.num_ranks());
        let (lo, hi) = d.rank_box(r);
        for k in 0..3 {
            prop_assert!(p[k] >= lo[k] - 1e-9 && p[k] <= hi[k] + 1e-9, "axis {k}");
        }
        let node = d.rank_to_node(r);
        prop_assert!(d.node_ranks(node).contains(&r));
        prop_assert_eq!(d.node_of_pos(p), node);
    }

    /// Rank index ↔ grid coordinates round-trip over arbitrary node grids:
    /// `rank_at(rank_coords(r)) == r` for every rank.
    #[test]
    fn rank_coords_round_trip(nx in 1usize..6, ny in 1usize..6, nz in 1usize..6) {
        let d = Decomposition::new(SimBox::new(20.0, 24.0, 28.0), [nx, ny, nz]);
        for r in 0..d.num_ranks() {
            let c = d.rank_coords(r);
            prop_assert_eq!(d.rank_at([c[0] as i64, c[1] as i64, c[2] as i64]), r);
        }
    }

    /// Node index ↔ grid coordinates round-trip, and `rank_at` is periodic:
    /// offsetting a coordinate by any grid period maps back to the same rank.
    #[test]
    fn node_coords_round_trip_and_rank_at_is_periodic(
        nx in 1usize..6, ny in 1usize..6, nz in 1usize..6,
        kx in -3i64..4, ky in -3i64..4, kz in -3i64..4,
    ) {
        let d = Decomposition::new(SimBox::new(20.0, 24.0, 28.0), [nx, ny, nz]);
        for n in 0..d.num_nodes() {
            let c = d.node_coords(n);
            prop_assert_eq!(d.node_at([c[0] as i64, c[1] as i64, c[2] as i64]), n);
        }
        let ranks = [2 * nx as i64, 2 * ny as i64, nz as i64];
        for r in 0..d.num_ranks() {
            let c = d.rank_coords(r);
            let shifted = [
                c[0] as i64 + kx * ranks[0],
                c[1] as i64 + ky * ranks[1],
                c[2] as i64 + kz * ranks[2],
            ];
            prop_assert_eq!(d.rank_at(shifted), r, "rank {} shifted by periods", r);
        }
    }

    /// `rank_to_node` and `node_at`/`node_ranks` are mutually consistent on
    /// arbitrary grids: every rank's node contains it, nodes partition the
    /// ranks into groups of four, and the rank's node coordinates are its
    /// rank coordinates halved in x/y.
    #[test]
    fn rank_to_node_consistency(nx in 1usize..6, ny in 1usize..6, nz in 1usize..6) {
        let d = Decomposition::new(SimBox::new(20.0, 24.0, 28.0), [nx, ny, nz]);
        let mut seen = vec![0usize; d.num_ranks()];
        for n in 0..d.num_nodes() {
            for &r in d.node_ranks(n).iter() {
                prop_assert!(r < d.num_ranks());
                prop_assert_eq!(d.rank_to_node(r), n, "rank {} listed by node {}", r, n);
                seen[r] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "node_ranks must partition the ranks");
        for r in 0..d.num_ranks() {
            let rc = d.rank_coords(r);
            let n = d.rank_to_node(r);
            prop_assert_eq!(
                d.node_at([(rc[0] / 2) as i64, (rc[1] / 2) as i64, rc[2] as i64]), n
            );
            prop_assert!(d.rank_slot(r) < 4);
        }
    }

    /// Kinetic energy and temperature are invariant under atom reordering.
    #[test]
    fn kinetic_energy_is_permutation_invariant(seed in any::<u64>()) {
        use minimd::integrate::{init_velocities, kinetic_energy};
        let mut atoms = Atoms::new(copper_species());
        for i in 0..24u64 {
            atoms.push_local(i + 1, 0, Vec3::new(i as f64, 0.0, 0.0), Vec3::ZERO);
        }
        init_velocities(&mut atoms, 250.0, seed);
        let ke1 = kinetic_energy(&atoms);
        // Reverse the arrays (a permutation).
        atoms.vel.reverse();
        atoms.id.reverse();
        let ke2 = kinetic_energy(&atoms);
        prop_assert!((ke1 - ke2).abs() < 1e-12);
    }
}
