//! Physics integration tests: the substrate must behave like matter, not
//! just conserve invariants — solids stay solid, compressed crystals push
//! back, thermostats thermalize, diffusion distinguishes phases.

use minimd::compute::{pressure_bar, Msd};
use minimd::integrate::{current_temperature, init_velocities, Thermostat, VelocityVerlet};
use minimd::lattice::fcc_copper;
use minimd::neighbor::{ListKind, NeighborList};
use minimd::potential::eam::SuttonChen;
use minimd::potential::Potential;
use minimd::sim::Simulation;
use minimd::units::FEMTOSECOND;

#[test]
fn cold_copper_crystal_stays_crystalline() {
    // 300 K is far below copper's melting point: after 300 fs of EAM
    // dynamics the MSD must stay well below the nearest-neighbour distance
    // squared (no diffusion — thermal vibration only).
    let (bx, mut atoms) = fcc_copper(5, 5, 5);
    init_velocities(&mut atoms, 300.0, 1);
    let reference = Msd::new(&atoms);
    let sc = SuttonChen::copper(6.5);
    let mut sim = Simulation::new(bx, atoms, Box::new(sc), VelocityVerlet::new(FEMTOSECOND), 1.0, 50);
    sim.run(300);
    let msd = reference.compute(&sim.atoms, &sim.bx);
    // Lindemann-ish threshold: rms displacement ≪ 10% of d_nn (2.556 Å).
    assert!(msd < 0.3, "MSD {msd} Å² — the crystal must not melt at 300 K");
}

#[test]
fn compressed_crystal_has_higher_pressure_than_stretched() {
    // 6.0 Å cutoff keeps 2·(rc+skin) within the smallest (compressed) box.
    let sc = SuttonChen::copper(6.0);
    let eval = |a: f64| {
        let (bx, mut atoms) = minimd::lattice::fcc_lattice(5, 5, 5, a);
        let mut nl = NeighborList::new(sc.cutoff(), 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        let out = sc.compute(&mut atoms, &nl, &bx);
        pressure_bar(&atoms, &bx, 0.0, out.virial)
    };
    let compressed = eval(3.45);
    let equilibrium = eval(3.615);
    let stretched = eval(3.80);
    assert!(
        compressed > equilibrium && equilibrium > stretched,
        "P ordering violated: {compressed:.0} / {equilibrium:.0} / {stretched:.0} bar"
    );
    assert!(compressed > 0.0, "compression must push back: {compressed:.0} bar");
    assert!(stretched < 0.0, "tension must pull in: {stretched:.0} bar");
}

#[test]
fn langevin_heats_a_cold_crystal_to_the_bath_temperature() {
    let (bx, atoms) = fcc_copper(4, 4, 4); // zero velocities
    let sc = SuttonChen::copper(6.0); // 2·(rc+skin) fits the 14.5 Å box
    let mut vv = VelocityVerlet::new(2.0 * FEMTOSECOND);
    vv.thermostat = Thermostat::Langevin { t_target: 400.0, damp_ps: 0.1, seed: 5 };
    let mut sim = Simulation::new(bx, atoms, Box::new(sc), vv, 1.0, 50);
    sim.run(1500);
    let t = current_temperature(&sim.atoms);
    assert!((150.0..650.0).contains(&t), "bath coupling failed: T = {t}");
    assert!(t > 100.0, "a cold crystal must heat up in a 400 K bath");
}

#[test]
fn equipartition_between_kinetic_modes() {
    // After thermalization, KE splits evenly across x/y/z (equipartition).
    let (bx, mut atoms) = fcc_copper(5, 5, 5);
    init_velocities(&mut atoms, 300.0, 9);
    let sc = SuttonChen::copper(6.5);
    let mut sim = Simulation::new(bx, atoms, Box::new(sc), VelocityVerlet::new(FEMTOSECOND), 1.0, 50);
    sim.run(200);
    let a = &sim.atoms;
    let mut ke = [0.0f64; 3];
    for i in 0..a.nlocal {
        let m = a.mass(i);
        for (ax, k) in ke.iter_mut().enumerate() {
            *k += 0.5 * minimd::units::MVV_TO_ENERGY * m * a.vel[i][ax] * a.vel[i][ax];
        }
    }
    let mean = (ke[0] + ke[1] + ke[2]) / 3.0;
    for (ax, &k) in ke.iter().enumerate() {
        let dev = (k - mean).abs() / mean;
        assert!(dev < 0.25, "axis {ax}: KE share off by {dev:.2}");
    }
}

#[test]
fn momentum_is_conserved_through_a_long_nve_run() {
    let (bx, mut atoms) = fcc_copper(4, 4, 4);
    init_velocities(&mut atoms, 300.0, 2); // zero total momentum by design
    let sc = SuttonChen::copper(6.0); // respects the minimum-image bound
    let mut sim = Simulation::new(bx, atoms, Box::new(sc), VelocityVerlet::new(FEMTOSECOND), 1.0, 50);
    sim.run(400);
    let a = &sim.atoms;
    let p = (0..a.nlocal).fold(minimd::Vec3::ZERO, |acc, i| acc + a.vel[i] * a.mass(i));
    assert!(p.norm() < 1e-7, "net momentum drifted to {p:?}");
}
