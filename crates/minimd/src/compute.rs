//! Thermodynamic and structural observables: pressure, radial distribution
//! function (the paper's Fig. 6 observable), and mean-squared displacement.

use crate::atoms::Atoms;
use crate::simbox::SimBox;
use crate::units::EVA3_TO_BAR;
use crate::vec3::Vec3;

/// Virial pressure in bar: `P = (N kB T + W/3) / V` with `W = Σ r·f`.
pub fn pressure_bar(_atoms: &Atoms, bx: &SimBox, kinetic_energy: f64, virial: f64) -> f64 {
    let v = bx.volume();
    // N kB T = 2/3 KE for 3N dof.
    let p_ev_a3 = (2.0 / 3.0 * kinetic_energy + virial / 3.0) / v;
    p_ev_a3 * EVA3_TO_BAR
}

/// An accumulating radial distribution function between two species.
///
/// Sampled over minimum-image pair distances; normalized against the ideal-
/// gas expectation, so `g(r) → 1` at large `r` in a homogeneous system.
#[derive(Clone, Debug)]
pub struct Rdf {
    /// Species of the "central" atoms (`None` = all).
    pub type_a: Option<u32>,
    /// Species of the "surrounding" atoms (`None` = all).
    pub type_b: Option<u32>,
    /// Maximum sampled distance, Å.
    pub r_max: f64,
    /// Histogram bin count.
    pub bins: usize,
    hist: Vec<u64>,
    samples: u64,
    n_a: f64,
    n_b: f64,
    volume: f64,
}

impl Rdf {
    /// A fresh accumulator.
    pub fn new(type_a: Option<u32>, type_b: Option<u32>, r_max: f64, bins: usize) -> Self {
        assert!(r_max > 0.0 && bins > 0);
        Rdf { type_a, type_b, r_max, bins, hist: vec![0; bins], samples: 0, n_a: 0.0, n_b: 0.0, volume: 0.0 }
    }

    /// Accumulate one configuration (O(N²) over the selected species — RDF
    /// sampling runs on modest boxes).
    pub fn sample(&mut self, atoms: &Atoms, bx: &SimBox) {
        let sel = |t: Option<u32>, typ: u32| t.is_none_or(|x| x == typ);
        let idx_a: Vec<usize> =
            (0..atoms.nlocal).filter(|&i| sel(self.type_a, atoms.typ[i])).collect();
        let idx_b: Vec<usize> =
            (0..atoms.nlocal).filter(|&i| sel(self.type_b, atoms.typ[i])).collect();
        let dr = self.r_max / self.bins as f64;
        for &i in &idx_a {
            for &j in &idx_b {
                if i == j {
                    continue;
                }
                let r = bx.dist2(atoms.pos[i], atoms.pos[j]).sqrt();
                if r < self.r_max {
                    self.hist[(r / dr) as usize] += 1;
                }
            }
        }
        self.samples += 1;
        self.n_a += idx_a.len() as f64;
        self.n_b += idx_b.len() as f64;
        self.volume += bx.volume();
    }

    /// The normalized g(r) as `(r_center, g)` pairs.
    pub fn finish(&self) -> Vec<(f64, f64)> {
        if self.samples == 0 {
            return Vec::new();
        }
        let s = self.samples as f64;
        let (n_a, n_b, vol) = (self.n_a / s, self.n_b / s, self.volume / s);
        let same_species = self.type_a == self.type_b;
        let pair_density = if same_species {
            n_a * (n_b - 1.0) / vol
        } else {
            n_a * n_b / vol
        };
        let dr = self.r_max / self.bins as f64;
        self.hist
            .iter()
            .enumerate()
            .map(|(k, &h)| {
                let r_lo = k as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = pair_density * shell;
                let g = if ideal > 0.0 { h as f64 / s / ideal } else { 0.0 };
                (r_lo + 0.5 * dr, g)
            })
            .collect()
    }

    /// Location of the first maximum of g(r) past `r_min_search` Å.
    pub fn first_peak(&self, r_min_search: f64) -> Option<(f64, f64)> {
        self.finish()
            .into_iter()
            .filter(|&(r, _)| r >= r_min_search)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

/// Mean-squared displacement tracker (needs unwrapped reference positions).
#[derive(Clone, Debug)]
pub struct Msd {
    ref_pos: Vec<Vec3>,
}

impl Msd {
    /// Capture the reference configuration.
    pub fn new(atoms: &Atoms) -> Self {
        Msd { ref_pos: atoms.pos[..atoms.nlocal].to_vec() }
    }

    /// MSD in Å² relative to the reference, via minimum image (valid while
    /// displacements stay below half the box).
    pub fn compute(&self, atoms: &Atoms, bx: &SimBox) -> f64 {
        assert_eq!(self.ref_pos.len(), atoms.nlocal);
        let sum: f64 = self
            .ref_pos
            .iter()
            .zip(&atoms.pos[..atoms.nlocal])
            .map(|(&a, &b)| bx.min_image(b, a).norm2())
            .sum();
        sum / atoms.nlocal as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{fcc_copper, water_box};
    use crate::units::{CU_LATTICE, KB};

    #[test]
    fn ideal_gas_pressure() {
        // With no virial, P V = N kB T.
        let bx = SimBox::cubic(100.0);
        let mut atoms = Atoms::new(crate::atoms::copper_species());
        for i in 0..100 {
            atoms.push_local(i + 1, 0, Vec3::new(i as f64, 0.5, 0.5), Vec3::ZERO);
        }
        let t = 300.0;
        let ke = 1.5 * 100.0 * KB * t;
        let p = pressure_bar(&atoms, &bx, ke, 0.0);
        let expected = 100.0 * KB * t / bx.volume() * EVA3_TO_BAR;
        assert!((p - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn rdf_of_fcc_lattice_peaks_at_first_shell() {
        let (bx, atoms) = fcc_copper(4, 4, 4);
        let mut rdf = Rdf::new(None, None, 6.0, 240);
        rdf.sample(&atoms, &bx);
        let (r_peak, g_peak) = rdf.first_peak(1.0).unwrap();
        let expected = CU_LATTICE / 2.0f64.sqrt();
        assert!((r_peak - expected).abs() < 0.05, "peak at {r_peak}, expected {expected}");
        assert!(g_peak > 10.0, "crystal peak must be sharp, got {g_peak}");
    }

    #[test]
    fn rdf_normalizes_to_one_for_uniform_gas() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let bx = SimBox::cubic(20.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut atoms = Atoms::new(crate::atoms::copper_species());
        for i in 0..4000u64 {
            atoms.push_local(
                i + 1,
                0,
                Vec3::new(
                    rng.random_range(0.0..20.0),
                    rng.random_range(0.0..20.0),
                    rng.random_range(0.0..20.0),
                ),
                Vec3::ZERO,
            );
        }
        let mut rdf = Rdf::new(None, None, 8.0, 40);
        rdf.sample(&atoms, &bx);
        // Beyond a couple of Å, g(r) of an ideal gas is 1.
        for (r, g) in rdf.finish() {
            if r > 2.0 {
                assert!((g - 1.0).abs() < 0.15, "g({r}) = {g}");
            }
        }
    }

    #[test]
    fn oo_rdf_from_fresh_water_box_has_short_range_structure() {
        let (bx, atoms) = water_box(5, 5, 5, 1);
        let mut rdf = Rdf::new(Some(0), Some(0), 6.0, 120);
        rdf.sample(&atoms, &bx);
        let (r_peak, _) = rdf.first_peak(2.0).unwrap();
        // Lattice-built water: strongest O–O shell between the molecular
        // spacing (~3.1 Å) and the face diagonal (~4.4 Å).
        assert!(r_peak > 2.2 && r_peak < 4.6, "O-O peak at {r_peak}");
    }

    #[test]
    fn msd_zero_at_reference_then_grows() {
        let (bx, mut atoms) = fcc_copper(2, 2, 2);
        let msd = Msd::new(&atoms);
        assert_eq!(msd.compute(&atoms, &bx), 0.0);
        for p in &mut atoms.pos {
            p.x += 0.5;
        }
        assert!((msd.compute(&atoms, &bx) - 0.25).abs() < 1e-12);
    }
}
