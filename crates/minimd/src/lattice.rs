//! Initial-configuration builders for the paper's two benchmark systems:
//! FCC copper and liquid-like water boxes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::atoms::{copper_species, water_species, Atoms};
use crate::simbox::SimBox;
use crate::units::CU_LATTICE;
use crate::vec3::Vec3;

/// Fractional basis of the FCC conventional cell (4 atoms).
pub const FCC_BASIS: [[f64; 3]; 4] =
    [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]];

/// O–H bond length of the rigid-geometry water monomer, Å.
pub const WATER_ROH: f64 = 0.9572;
/// H–O–H angle, radians (104.52°).
pub const WATER_ANGLE: f64 = 104.52 * std::f64::consts::PI / 180.0;
/// Molecular spacing reproducing ~0.997 g/cm³ liquid density, Å
/// (0.0334 molecules/Å³ ⇒ cube root of the inverse).
pub const WATER_SPACING: f64 = 3.104;

/// Build an FCC copper block of `nx × ny × nz` conventional cells at the
/// standard lattice constant, with zero velocities.
pub fn fcc_copper(nx: usize, ny: usize, nz: usize) -> (SimBox, Atoms) {
    fcc_lattice(nx, ny, nz, CU_LATTICE)
}

/// Build an FCC block with arbitrary lattice constant `a` (one species,
/// copper species table).
pub fn fcc_lattice(nx: usize, ny: usize, nz: usize, a: f64) -> (SimBox, Atoms) {
    assert!(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
    let bx = SimBox::new(nx as f64 * a, ny as f64 * a, nz as f64 * a);
    let mut atoms = Atoms::new(copper_species());
    let mut id = 0u64;
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                let origin = Vec3::new(ix as f64, iy as f64, iz as f64) * a;
                for basis in &FCC_BASIS {
                    id += 1;
                    let p = origin + Vec3::from(*basis) * a;
                    atoms.push_local(id, 0, p, Vec3::ZERO);
                }
            }
        }
    }
    (bx, atoms)
}

/// Build a water box of `nx × ny × nz` molecules on a cubic molecular
/// lattice with randomized orientations and small positional jitter —
/// a liquid-like starting structure that equilibrates quickly.
///
/// Atom order is O, H, H per molecule, so `molecule = atom_index / 3` and
/// the intramolecular topology is implicit (the convention the water
/// surrogate potential relies on).
pub fn water_box(nx: usize, ny: usize, nz: usize, seed: u64) -> (SimBox, Atoms) {
    water_box_spaced(nx, ny, nz, WATER_SPACING, seed)
}

/// [`water_box`] with explicit molecular spacing (Å).
pub fn water_box_spaced(nx: usize, ny: usize, nz: usize, spacing: f64, seed: u64) -> (SimBox, Atoms) {
    assert!(nx > 0 && ny > 0 && nz > 0, "cell counts must be positive");
    assert!(spacing > 2.0 * WATER_ROH, "molecules would overlap");
    let bx = SimBox::new(nx as f64 * spacing, ny as f64 * spacing, nz as f64 * spacing);
    let mut atoms = Atoms::new(water_species());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut id = 0u64;
    let jitter = 0.12 * spacing;
    for ix in 0..nx {
        for iy in 0..ny {
            for iz in 0..nz {
                let center = Vec3::new(
                    (ix as f64 + 0.5) * spacing + rng.random_range(-jitter..jitter),
                    (iy as f64 + 0.5) * spacing + rng.random_range(-jitter..jitter),
                    (iz as f64 + 0.5) * spacing + rng.random_range(-jitter..jitter),
                );
                let center = bx.wrap(center);
                // Random orientation from two random angles.
                let theta: f64 = rng.random_range(0.0..std::f64::consts::PI);
                let phi: f64 = rng.random_range(0.0..2.0 * std::f64::consts::PI);
                let axis1 = Vec3::new(theta.sin() * phi.cos(), theta.sin() * phi.sin(), theta.cos());
                // A perpendicular direction for the in-plane H spread.
                let helper = if axis1.x.abs() < 0.9 { Vec3::new(1.0, 0.0, 0.0) } else { Vec3::new(0.0, 1.0, 0.0) };
                let axis2 = axis1.cross(helper).normalized();
                let half = WATER_ANGLE / 2.0;
                let h1 = center + (axis1 * half.cos() + axis2 * half.sin()) * WATER_ROH;
                let h2 = center + (axis1 * half.cos() - axis2 * half.sin()) * WATER_ROH;
                id += 1;
                atoms.push_local(id, 0, center, Vec3::ZERO);
                id += 1;
                atoms.push_local(id, 1, bx.wrap(h1), Vec3::ZERO);
                id += 1;
                atoms.push_local(id, 1, bx.wrap(h2), Vec3::ZERO);
            }
        }
    }
    (bx, atoms)
}

/// Choose `(nx, ny, nz)` FCC cell counts whose atom count best approaches
/// `target_atoms` with a near-cubic aspect (used to build the paper's 0.54 M
/// copper system: 4 atoms per cell ⇒ 51×51×52 ≈ 540k).
pub fn fcc_cells_for(target_atoms: usize) -> (usize, usize, usize) {
    let cells = (target_atoms as f64 / 4.0).max(1.0);
    let edge = cells.powf(1.0 / 3.0);
    let base = edge.floor().max(1.0) as usize;
    let mut best = (base, base, base);
    let mut best_err = usize::MAX;
    for dx in 0..=1 {
        for dy in 0..=1 {
            for dz in 0..=1 {
                let (nx, ny, nz) = (base + dx, base + dy, base + dz);
                let n = 4 * nx * ny * nz;
                let err = n.abs_diff(target_atoms);
                if err < best_err {
                    best_err = err;
                    best = (nx, ny, nz);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_atom_count_and_bounds() {
        let (bx, atoms) = fcc_copper(3, 4, 5);
        assert_eq!(atoms.nlocal, 4 * 3 * 4 * 5);
        assert!(atoms.pos.iter().all(|&p| bx.contains(p)), "all atoms inside the box");
        atoms.validate().unwrap();
    }

    #[test]
    fn fcc_nearest_neighbor_distance() {
        let (bx, atoms) = fcc_copper(3, 3, 3);
        // Nearest-neighbour distance in FCC is a/√2.
        let expected = CU_LATTICE / 2.0f64.sqrt();
        let mut min_d2 = f64::MAX;
        for i in 0..atoms.nlocal {
            for j in (i + 1)..atoms.nlocal {
                min_d2 = min_d2.min(bx.dist2(atoms.pos[i], atoms.pos[j]));
            }
        }
        assert!((min_d2.sqrt() - expected).abs() < 1e-9);
    }

    #[test]
    fn water_box_geometry() {
        let (bx, atoms) = water_box(3, 3, 3, 7);
        assert_eq!(atoms.nlocal, 3 * 27);
        // Each molecule: O (type 0) then two H (type 1) at the right bond
        // length and angle.
        for m in 0..27 {
            let o = atoms.pos[3 * m];
            let h1 = atoms.pos[3 * m + 1];
            let h2 = atoms.pos[3 * m + 2];
            assert_eq!(atoms.typ[3 * m], 0);
            assert_eq!(atoms.typ[3 * m + 1], 1);
            assert_eq!(atoms.typ[3 * m + 2], 1);
            let d1 = bx.min_image(h1, o);
            let d2 = bx.min_image(h2, o);
            assert!((d1.norm() - WATER_ROH).abs() < 1e-9);
            assert!((d2.norm() - WATER_ROH).abs() < 1e-9);
            let cosang = d1.dot(d2) / (d1.norm() * d2.norm());
            assert!((cosang.acos() - WATER_ANGLE).abs() < 1e-9);
        }
    }

    #[test]
    fn water_density_near_one_gram_per_cc() {
        let (bx, atoms) = water_box(4, 4, 4, 1);
        let nmol = atoms.nlocal as f64 / 3.0;
        let density = nmol / bx.volume(); // molecules per Å³
        assert!((density - 0.0334).abs() < 0.002, "density {density}");
    }

    #[test]
    fn fcc_cells_for_paper_copper_target() {
        let (nx, ny, nz) = fcc_cells_for(540_000);
        let n = 4 * nx * ny * nz;
        // Within 2% of the paper's 0.54M copper system.
        assert!((n as f64 - 540_000.0).abs() / 540_000.0 < 0.02, "{n}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = water_box(2, 2, 2, 9);
        let (_, b) = water_box(2, 2, 2, 9);
        assert_eq!(a.pos, b.pos);
        let (_, c) = water_box(2, 2, 2, 10);
        assert_ne!(a.pos, c.pos);
    }
}
