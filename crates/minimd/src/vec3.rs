//! Minimal 3-vector math for MD geometry.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-component vector of `f64` (position, velocity, force).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components equal.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in this direction (zero vector returns zero).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// As a `[f64; 3]` array.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn dot_cross_norm() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).normalized().norm(), 1.0);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn indexing_and_bounds() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        v[2] = 1.0;
        assert_eq!(v.z, 1.0);
        assert_eq!(v.to_array(), [7.0, 8.0, 1.0]);
        assert_eq!(Vec3::from([1.0, 2.0, 3.0]), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
    }
}
