//! Structure-of-arrays atom storage.
//!
//! LAMMPS stores per-atom data in parallel arrays with local atoms first and
//! ghost atoms appended after index `nlocal` — the layout the paper's Fig. 5
//! reorganizes for the node-based scheme. We keep the same convention:
//! indices `0..nlocal` are owned atoms, `nlocal..nlocal+nghost` are ghosts.

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// Per-species metadata.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Species {
    /// Display name ("Cu", "O", "H", ...).
    pub name: String,
    /// Mass in g/mol.
    pub mass: f64,
}

/// Structure-of-arrays atom container with the LAMMPS local/ghost split.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Atoms {
    /// Global atom ids (stable across migrations).
    pub id: Vec<u64>,
    /// Species index into [`Atoms::species`].
    pub typ: Vec<u32>,
    /// Positions, Å.
    pub pos: Vec<Vec3>,
    /// Velocities, Å/ps.
    pub vel: Vec<Vec3>,
    /// Forces, eV/Å.
    pub force: Vec<Vec3>,
    /// Number of locally owned atoms; everything past this index is a ghost.
    pub nlocal: usize,
    /// Species table.
    pub species: Vec<Species>,
}

impl Atoms {
    /// An empty container with the given species table.
    pub fn new(species: Vec<Species>) -> Self {
        Atoms { species, ..Default::default() }
    }

    /// Total stored atoms (local + ghost).
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// `true` when no atoms are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Number of ghost atoms.
    #[inline]
    pub fn nghost(&self) -> usize {
        self.len() - self.nlocal
    }

    /// Mass of atom `i` from its species.
    #[inline]
    pub fn mass(&self, i: usize) -> f64 {
        self.species[self.typ[i] as usize].mass
    }

    /// Append a local atom (must be called before any ghosts exist).
    ///
    /// # Panics
    /// If ghosts are already present (locals must stay contiguous) or the
    /// species index is out of range.
    pub fn push_local(&mut self, id: u64, typ: u32, pos: Vec3, vel: Vec3) {
        assert_eq!(self.nghost(), 0, "cannot add locals after ghosts");
        assert!((typ as usize) < self.species.len(), "unknown species {typ}");
        self.id.push(id);
        self.typ.push(typ);
        self.pos.push(pos);
        self.vel.push(vel);
        self.force.push(Vec3::ZERO);
        self.nlocal += 1;
    }

    /// Append a ghost atom (position-image of an atom owned elsewhere).
    ///
    /// # Panics
    /// If the species index is out of range.
    pub fn push_ghost(&mut self, id: u64, typ: u32, pos: Vec3) {
        assert!((typ as usize) < self.species.len(), "unknown species {typ}");
        self.id.push(id);
        self.typ.push(typ);
        self.pos.push(pos);
        self.vel.push(Vec3::ZERO);
        self.force.push(Vec3::ZERO);
    }

    /// Drop all ghost atoms (before a rebuild/exchange).
    pub fn clear_ghosts(&mut self) {
        self.id.truncate(self.nlocal);
        self.typ.truncate(self.nlocal);
        self.pos.truncate(self.nlocal);
        self.vel.truncate(self.nlocal);
        self.force.truncate(self.nlocal);
    }

    /// Zero the force array (start of a step).
    pub fn zero_forces(&mut self) {
        self.force.fill(Vec3::ZERO);
    }

    /// Sum of all local forces (≈ 0 for translation-invariant potentials).
    pub fn net_force(&self) -> Vec3 {
        self.force[..self.nlocal].iter().fold(Vec3::ZERO, |acc, &f| acc + f)
    }

    /// Internal consistency check: array lengths agree, `nlocal ≤ len`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.pos.len();
        if self.id.len() != n || self.typ.len() != n || self.vel.len() != n || self.force.len() != n {
            return Err(format!(
                "array length mismatch: id={} typ={} pos={} vel={} force={}",
                self.id.len(),
                self.typ.len(),
                n,
                self.vel.len(),
                self.force.len()
            ));
        }
        if self.nlocal > n {
            return Err(format!("nlocal {} exceeds atom count {n}", self.nlocal));
        }
        if let Some(&bad) = self.typ.iter().find(|&&t| t as usize >= self.species.len()) {
            return Err(format!("species index {bad} out of range"));
        }
        Ok(())
    }
}

/// Species table for elemental copper.
pub fn copper_species() -> Vec<Species> {
    vec![Species { name: "Cu".into(), mass: crate::units::MASS_CU }]
}

/// Species table for water: type 0 = O, type 1 = H (paper convention:
/// neighbour budgets are listed per O and per H separately).
pub fn water_species() -> Vec<Species> {
    vec![
        Species { name: "O".into(), mass: crate::units::MASS_O },
        Species { name: "H".into(), mass: crate::units::MASS_H },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ghost_partition() {
        let mut a = Atoms::new(copper_species());
        a.push_local(1, 0, Vec3::new(0.0, 0.0, 0.0), Vec3::ZERO);
        a.push_local(2, 0, Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO);
        a.push_ghost(3, 0, Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(a.nlocal, 2);
        assert_eq!(a.nghost(), 1);
        assert_eq!(a.len(), 3);
        a.clear_ghosts();
        assert_eq!(a.len(), 2);
        assert_eq!(a.nghost(), 0);
        a.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "after ghosts")]
    fn locals_after_ghosts_rejected() {
        let mut a = Atoms::new(copper_species());
        a.push_local(1, 0, Vec3::ZERO, Vec3::ZERO);
        a.push_ghost(2, 0, Vec3::ZERO);
        a.push_local(3, 0, Vec3::ZERO, Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown species")]
    fn bad_species_rejected() {
        let mut a = Atoms::new(copper_species());
        a.push_local(1, 5, Vec3::ZERO, Vec3::ZERO);
    }

    #[test]
    fn mass_lookup() {
        let mut a = Atoms::new(water_species());
        a.push_local(1, 0, Vec3::ZERO, Vec3::ZERO);
        a.push_local(2, 1, Vec3::ZERO, Vec3::ZERO);
        assert_eq!(a.mass(0), crate::units::MASS_O);
        assert_eq!(a.mass(1), crate::units::MASS_H);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut a = Atoms::new(copper_species());
        a.push_local(1, 0, Vec3::ZERO, Vec3::ZERO);
        a.vel.pop();
        assert!(a.validate().is_err());
    }
}
