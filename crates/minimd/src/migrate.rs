//! Atom migration between ranks — LAMMPS' "exchange" of flying atoms.
//!
//! Between neighbour-list rebuilds atoms may drift out of their owner's
//! sub-box; at every rebuild (each ~50 steps in the paper's runs) owners
//! hand them to the rank whose sub-box now contains them. §III-A2 notes the
//! node scheme's buffer offsets "only require to be recalculated after
//! rebuilding the ghost region and exchanging flying atoms" — this module
//! is that exchange, implemented functionally over per-rank stores.

use crate::atoms::Atoms;
use crate::domain::Decomposition;
use crate::simbox::SimBox;

/// Statistics of one migration pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Atoms that changed owner.
    pub migrated: usize,
    /// Ranks that sent at least one atom.
    pub senders: usize,
}

/// Move every local atom to the rank owning its (wrapped) position.
///
/// Ghosts must be cleared first (they are rebuilt after migration anyway).
/// Velocities and ids travel with the atom; forces are reset (they are
/// recomputed right after, at the rebuild).
///
/// # Panics
/// If any rank still holds ghosts.
pub fn exchange_atoms(decomp: &Decomposition, per_rank: &mut [Atoms]) -> MigrationStats {
    assert_eq!(per_rank.len(), decomp.num_ranks());
    let mut stats = MigrationStats::default();
    // Collect movers: (dst, id, typ, pos, vel).
    let mut movers: Vec<(usize, u64, u32, crate::vec3::Vec3, crate::vec3::Vec3)> = Vec::new();
    for (rank, atoms) in per_rank.iter_mut().enumerate() {
        assert_eq!(atoms.nghost(), 0, "clear ghosts before migration");
        let mut sent_any = false;
        let mut i = 0;
        while i < atoms.nlocal {
            let wrapped = decomp.bx.wrap(atoms.pos[i]);
            let owner = decomp.rank_of_pos(wrapped);
            if owner != rank {
                movers.push((owner, atoms.id[i], atoms.typ[i], wrapped, atoms.vel[i]));
                // swap-remove the local atom (order within a rank is not
                // semantically meaningful for locals).
                let last = atoms.nlocal - 1;
                atoms.id.swap(i, last);
                atoms.typ.swap(i, last);
                atoms.pos.swap(i, last);
                atoms.vel.swap(i, last);
                atoms.force.swap(i, last);
                atoms.id.pop();
                atoms.typ.pop();
                atoms.pos.pop();
                atoms.vel.pop();
                atoms.force.pop();
                atoms.nlocal -= 1;
                sent_any = true;
                stats.migrated += 1;
            } else {
                // Keep positions wrapped as a side effect (LAMMPS does the
                // same PBC remap during exchange).
                atoms.pos[i] = wrapped;
                i += 1;
            }
        }
        if sent_any {
            stats.senders += 1;
        }
    }
    for (dst, id, typ, pos, vel) in movers {
        per_rank[dst].push_local(id, typ, pos, vel);
    }
    stats
}


/// Spatially sort the local atoms by cell-list bin (LAMMPS'
/// `atom_modify sort`): neighbouring atoms end up adjacent in memory, which
/// is what keeps the descriptor gather cache-friendly. Ghosts must be
/// cleared first (their indices would dangle).
///
/// Returns the permutation applied (old index of each new slot).
///
/// # Panics
/// If ghosts are present.
pub fn sort_atoms_spatially(atoms: &mut Atoms, bx: &SimBox, bin_edge: f64) -> Vec<usize> {
    assert_eq!(atoms.nghost(), 0, "clear ghosts before sorting");
    assert!(bin_edge > 0.0);
    let l = bx.lengths();
    let nb = [
        (l.x / bin_edge).ceil().max(1.0) as usize,
        (l.y / bin_edge).ceil().max(1.0) as usize,
        (l.z / bin_edge).ceil().max(1.0) as usize,
    ];
    let key = |p: crate::vec3::Vec3| -> usize {
        let w = bx.wrap(p);
        let cx = (((w.x - bx.lo.x) / bin_edge) as usize).min(nb[0] - 1);
        let cy = (((w.y - bx.lo.y) / bin_edge) as usize).min(nb[1] - 1);
        let cz = (((w.z - bx.lo.z) / bin_edge) as usize).min(nb[2] - 1);
        (cz * nb[1] + cy) * nb[0] + cx
    };
    let mut order: Vec<usize> = (0..atoms.nlocal).collect();
    order.sort_by_key(|&i| (key(atoms.pos[i]), atoms.id[i]));
    // Apply the permutation to every parallel array.
    let apply = |order: &[usize], src: &mut Vec<crate::vec3::Vec3>| {
        let new: Vec<_> = order.iter().map(|&i| src[i]).collect();
        *src = new;
    };
    let ids: Vec<u64> = order.iter().map(|&i| atoms.id[i]).collect();
    let typs: Vec<u32> = order.iter().map(|&i| atoms.typ[i]).collect();
    atoms.id = ids;
    atoms.typ = typs;
    apply(&order, &mut atoms.pos);
    apply(&order, &mut atoms.vel);
    apply(&order, &mut atoms.force);
    order
}

/// Check the ownership invariant: every local atom is inside its rank's
/// sub-box. Returns the ids of violators (empty = consistent).
pub fn ownership_violations(decomp: &Decomposition, per_rank: &[Atoms]) -> Vec<u64> {
    let mut bad = Vec::new();
    for (rank, atoms) in per_rank.iter().enumerate() {
        for i in 0..atoms.nlocal {
            if decomp.rank_of_pos(atoms.pos[i]) != rank {
                bad.push(atoms.id[i]);
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::fcc_lattice;
    use crate::vec3::Vec3;
    use dpmd_partition_helper::partition;

    /// Local copy of the comm crate's partitioner to avoid a cyclic dep.
    mod dpmd_partition_helper {
        use super::*;
        pub fn partition(decomp: &Decomposition, global: &Atoms) -> Vec<Atoms> {
            let mut per_rank: Vec<Atoms> =
                (0..decomp.num_ranks()).map(|_| Atoms::new(global.species.clone())).collect();
            for i in 0..global.nlocal {
                let r = decomp.rank_of_pos(global.pos[i]);
                per_rank[r].push_local(global.id[i], global.typ[i], global.pos[i], global.vel[i]);
            }
            per_rank
        }
    }

    fn setup() -> (Decomposition, Vec<Atoms>) {
        let (bx, atoms) = fcc_lattice(8, 8, 8, 3.615);
        let decomp = Decomposition::new(bx, [2, 2, 2]);
        let per_rank = partition(&decomp, &atoms);
        (decomp, per_rank)
    }

    #[test]
    fn no_movement_means_no_migration() {
        let (decomp, mut per_rank) = setup();
        let stats = exchange_atoms(&decomp, &mut per_rank);
        assert_eq!(stats.migrated, 0);
        assert!(ownership_violations(&decomp, &per_rank).is_empty());
    }

    #[test]
    fn drifted_atoms_find_their_new_owner() {
        let (decomp, mut per_rank) = setup();
        let total: usize = per_rank.iter().map(|a| a.nlocal).sum();
        // Push every atom of rank 0 across the +x boundary of its sub-box.
        let (_, hi) = decomp.rank_box(0);
        let shift = hi.x + 0.5;
        let n0 = per_rank[0].nlocal;
        for i in 0..n0 {
            per_rank[0].pos[i].x = shift;
        }
        let stats = exchange_atoms(&decomp, &mut per_rank);
        assert_eq!(stats.migrated, n0);
        assert!(ownership_violations(&decomp, &per_rank).is_empty());
        // Conservation.
        let total_after: usize = per_rank.iter().map(|a| a.nlocal).sum();
        assert_eq!(total, total_after);
        assert_eq!(per_rank[0].nlocal, 0);
        for a in per_rank.iter() {
            a.validate().unwrap();
        }
    }

    #[test]
    fn far_images_are_wrapped_home() {
        let (decomp, mut per_rank) = setup();
        // Teleport one atom multiple box lengths away.
        per_rank[3].pos[0] += Vec3::new(5.0, -3.0, 2.0) * decomp.bx.lengths().x;
        let stats = exchange_atoms(&decomp, &mut per_rank);
        assert!(stats.migrated <= 1);
        assert!(ownership_violations(&decomp, &per_rank).is_empty());
        for a in per_rank.iter() {
            for i in 0..a.nlocal {
                assert!(decomp.bx.contains(a.pos[i]));
            }
        }
    }


    #[test]
    fn spatial_sort_preserves_content_and_groups_bins() {
        use crate::migrate::sort_atoms_spatially;
        let (decomp, mut per_rank) = setup();
        let a = &mut per_rank[0];
        let bx = decomp.bx;
        let mut ids_before: Vec<u64> = a.id.clone();
        ids_before.sort_unstable();
        sort_atoms_spatially(a, &bx, 5.0);
        a.validate().unwrap();
        let mut ids_after: Vec<u64> = a.id.clone();
        ids_after.sort_unstable();
        assert_eq!(ids_before, ids_after, "a permutation, nothing lost");
        // Consecutive atoms are spatially close more often than random:
        // mean neighbour distance after sorting is below the box scale.
        let mean_step: f64 = (1..a.nlocal)
            .map(|i| bx.min_image(a.pos[i], a.pos[i - 1]).norm())
            .sum::<f64>()
            / (a.nlocal - 1) as f64;
        assert!(mean_step < 10.0, "mean consecutive distance {mean_step}");
    }

    #[test]
    fn ids_and_velocities_travel_with_atoms() {
        let (decomp, mut per_rank) = setup();
        let id = per_rank[0].id[0];
        per_rank[0].vel[0] = Vec3::new(1.0, 2.0, 3.0);
        let (_, hi) = decomp.rank_box(0);
        per_rank[0].pos[0].x = hi.x + 1.0;
        exchange_atoms(&decomp, &mut per_rank);
        let holder = per_rank
            .iter()
            .find(|a| a.id[..a.nlocal].contains(&id))
            .expect("atom must exist somewhere");
        let idx = holder.id.iter().position(|&x| x == id).unwrap();
        assert_eq!(holder.vel[idx], Vec3::new(1.0, 2.0, 3.0));
    }
}
