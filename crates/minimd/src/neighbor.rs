//! Cell-list and Verlet neighbour lists with skin.
//!
//! The paper's systems use a 2 Å skin and rebuild the list every 50 steps
//! (§IV); between rebuilds the same list is reused, so atoms may drift up to
//! skin/2 before correctness requires a rebuild. Both a *half* list (each
//! pair stored once, for Newton-on analytic pair potentials) and a *full*
//! list (each atom sees all its neighbours, the form the DeePMD environment
//! matrix consumes) are supported.

use crate::atoms::Atoms;
use crate::simbox::SimBox;
use crate::vec3::Vec3;

/// Whether each pair appears once (half) or twice (full).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListKind {
    /// Pair `(i, j)` stored only on `min(i, j)`.
    Half,
    /// Pair stored on both atoms — required by the DeePMD descriptor.
    Full,
}

/// A compressed-sparse-row Verlet neighbour list over the local atoms.
#[derive(Clone, Debug)]
pub struct NeighborList {
    /// Interaction cutoff, Å.
    pub cutoff: f64,
    /// Verlet skin, Å.
    pub skin: f64,
    /// Half or full list.
    pub kind: ListKind,
    /// CSR offsets, length `nlocal + 1`.
    pub offsets: Vec<usize>,
    /// Flattened neighbour indices (into the full local+ghost array).
    pub list: Vec<u32>,
    /// Positions at the last build (locals only), for the drift check.
    ref_pos: Vec<Vec3>,
    /// Number of builds performed (observable for rebuild-policy tests).
    pub builds: u64,
}

impl NeighborList {
    /// An empty list with the given parameters.
    pub fn new(cutoff: f64, skin: f64, kind: ListKind) -> Self {
        assert!(cutoff > 0.0 && skin >= 0.0);
        NeighborList { cutoff, skin, kind, offsets: vec![0], list: Vec::new(), ref_pos: Vec::new(), builds: 0 }
    }

    /// Neighbours of local atom `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.list[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of local atoms the list covers.
    #[inline]
    pub fn natoms(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored pairs (directed).
    #[inline]
    pub fn total_neighbors(&self) -> usize {
        self.list.len()
    }

    /// `true` if some local atom moved more than skin/2 since the last
    /// build — the classic Verlet-list safety criterion.
    pub fn needs_rebuild(&self, atoms: &Atoms, bx: &SimBox) -> bool {
        if self.ref_pos.len() != atoms.nlocal {
            return true;
        }
        let limit2 = (0.5 * self.skin) * (0.5 * self.skin);
        atoms.pos[..atoms.nlocal]
            .iter()
            .zip(&self.ref_pos)
            .any(|(&p, &q)| bx.min_image(p, q).norm2() > limit2)
    }

    /// Build the list.
    ///
    /// If `atoms` carries ghosts, plain Euclidean distances are used and
    /// neighbours may be ghosts (the distributed path). Without ghosts,
    /// minimum-image convention applies (the single-box path).
    pub fn build(&mut self, atoms: &Atoms, bx: &SimBox) {
        let rlist = self.cutoff + self.skin;
        let l = bx.lengths();
        let use_min_image = atoms.nghost() == 0;
        let ncx = (l.x / rlist).floor() as usize;
        let ncy = (l.y / rlist).floor() as usize;
        let ncz = (l.z / rlist).floor() as usize;
        if use_min_image && (ncx < 3 || ncy < 3 || ncz < 3) {
            self.build_n2(atoms, bx);
        } else {
            self.build_cells(atoms, bx, use_min_image);
        }
        self.ref_pos.clear();
        self.ref_pos.extend_from_slice(&atoms.pos[..atoms.nlocal]);
        self.builds += 1;
    }

    /// O(N²) reference build (small boxes, and the oracle for tests).
    fn build_n2(&mut self, atoms: &Atoms, bx: &SimBox) {
        let rlist2 = (self.cutoff + self.skin) * (self.cutoff + self.skin);
        let n = atoms.len();
        let nlocal = atoms.nlocal;
        let use_min_image = atoms.nghost() == 0;
        self.offsets.clear();
        self.offsets.push(0);
        self.list.clear();
        for i in 0..nlocal {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if self.kind == ListKind::Half && j < nlocal && j < i {
                    continue;
                }
                let d2 = if use_min_image {
                    bx.dist2(atoms.pos[i], atoms.pos[j])
                } else {
                    (atoms.pos[i] - atoms.pos[j]).norm2()
                };
                if d2 <= rlist2 {
                    self.list.push(j as u32);
                }
            }
            self.offsets.push(self.list.len());
        }
    }

    /// Cell-list build: O(N) binning, 27-stencil scan.
    fn build_cells(&mut self, atoms: &Atoms, bx: &SimBox, use_min_image: bool) {
        let rlist = self.cutoff + self.skin;
        let rlist2 = rlist * rlist;
        let n = atoms.len();
        let nlocal = atoms.nlocal;

        // Cell grid over the bounding region of all atoms (ghosts can lie
        // outside the primary box).
        let (mut lo, mut hi) = (bx.lo, bx.hi);
        if !use_min_image {
            for &p in &atoms.pos {
                lo = lo.min(p);
                hi = hi.max(p);
            }
            // Nudge the upper corner so max-coordinate atoms bin inside.
            hi += Vec3::splat(1e-9);
        }
        let ext = hi - lo;
        let nc = [
            ((ext.x / rlist).floor() as usize).max(1),
            ((ext.y / rlist).floor() as usize).max(1),
            ((ext.z / rlist).floor() as usize).max(1),
        ];
        let inv_cell = Vec3::new(nc[0] as f64 / ext.x, nc[1] as f64 / ext.y, nc[2] as f64 / ext.z);
        let cell_of = |p: Vec3| -> [usize; 3] {
            let mut c = [0usize; 3];
            for d in 0..3 {
                let f = ((p[d] - lo[d]) * inv_cell[d]).floor();
                c[d] = (f.max(0.0) as usize).min(nc[d] - 1);
            }
            c
        };
        // Counting sort of atoms into cells.
        let ncell = nc[0] * nc[1] * nc[2];
        let lin = |c: [usize; 3]| (c[2] * nc[1] + c[1]) * nc[0] + c[0];
        let mut count = vec![0usize; ncell + 1]; // dpmd-allow D7: counting-sort bins, rebuilt only at neighbour-list cadence
        let mut cell_idx = vec![0usize; n]; // dpmd-allow D7: counting-sort bins, rebuilt only at neighbour-list cadence
        for (a, &p) in atoms.pos.iter().enumerate() {
            let c = lin(cell_of(p));
            cell_idx[a] = c;
            count[c + 1] += 1;
        }
        for c in 0..ncell {
            count[c + 1] += count[c];
        }
        let mut bins = vec![0u32; n]; // dpmd-allow D7: counting-sort bins, rebuilt only at neighbour-list cadence
        let mut cursor = count.clone(); // dpmd-allow D7: cursor copy at neighbour-list rebuild cadence
        for (a, &c) in cell_idx.iter().enumerate() {
            bins[cursor[c]] = a as u32;
            cursor[c] += 1;
        }

        let mut stencil: Vec<(i64, i64, i64)> = Vec::with_capacity(27); // dpmd-allow D7: 27-entry stencil at neighbour-list rebuild cadence
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    stencil.push((dx, dy, dz));
                }
            }
        }

        // Parallel stencil scan. Atoms are chunked by the even-split policy
        // (boundaries depend on `nlocal` only, never on the pool width);
        // each chunk fills a private (ends, list) segment and the segments
        // are concatenated in chunk order below, so the CSR output is
        // identical to a serial scan for any thread count.
        let kind = self.kind;
        let chunks = dpmd_threads::atom_chunks(nlocal);
        let mut parts: Vec<(Vec<usize>, Vec<u32>)> =
            chunks.iter().map(|c| (Vec::with_capacity(c.len()), Vec::new())).collect(); // dpmd-allow D7: O(chunks) CSR segments at neighbour-list rebuild cadence
        {
            let (pos, stencil, count, bins) = (&atoms.pos, &stencil, &count, &bins);
            let cell_of = &cell_of;
            dpmd_threads::ThreadPool::global().scope(|sc| {
                for (range, part) in chunks.iter().zip(parts.iter_mut()) {
                    let range = range.clone(); // dpmd-allow D7: Range clone is Copy-sized, no heap
                    sc.spawn(move || {
                        let (ends, list) = part;
                        for i in range {
                            let ci = cell_of(pos[i]);
                            let atom_start = list.len();
                            for &(dx, dy, dz) in stencil {
                                let mut cc = [0usize; 3];
                                let mut skip = false;
                                for (d, delta) in [dx, dy, dz].into_iter().enumerate() {
                                    let raw = ci[d] as i64 + delta;
                                    if use_min_image {
                                        // Periodic wrap of the cell index.
                                        cc[d] = raw.rem_euclid(nc[d] as i64) as usize;
                                    } else if raw < 0 || raw >= nc[d] as i64 {
                                        skip = true;
                                        break;
                                    } else {
                                        cc[d] = raw as usize;
                                    }
                                }
                                if skip {
                                    continue;
                                }
                                let c = lin(cc);
                                for &ju in &bins[count[c]..count[c + 1]] {
                                    let j = ju as usize;
                                    if j == i {
                                        continue;
                                    }
                                    if kind == ListKind::Half && j < nlocal && j < i {
                                        continue;
                                    }
                                    let d2 = if use_min_image {
                                        bx.dist2(pos[i], pos[j])
                                    } else {
                                        (pos[i] - pos[j]).norm2()
                                    };
                                    if d2 <= rlist2 {
                                        list.push(ju);
                                    }
                                }
                            }
                            // With periodic cell wrap and fewer than 3 cells
                            // per dimension a neighbour cell can be visited
                            // twice; dedup the freshly added span to stay
                            // correct in that regime.
                            let span = &mut list[atom_start..];
                            span.sort_unstable();
                            let mut w = 0;
                            for r in 0..span.len() {
                                if r == 0 || span[r] != span[w - 1] {
                                    span[w] = span[r];
                                    w += 1;
                                }
                            }
                            list.truncate(atom_start + w);
                            ends.push(list.len());
                        }
                    });
                }
            });
        }

        // Chunk-ordered merge into the CSR arrays.
        self.offsets.clear();
        self.offsets.push(0);
        self.list.clear();
        for (ends, list) in &parts {
            let base = self.list.len();
            self.list.extend_from_slice(list);
            self.offsets.extend(ends.iter().map(|&e| base + e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::fcc_copper;

    #[test]
    fn cell_list_matches_n2_oracle() {
        let (bx, atoms) = fcc_copper(5, 5, 5);
        for kind in [ListKind::Half, ListKind::Full] {
            let mut oracle = NeighborList::new(4.0, 0.5, kind);
            oracle.build_n2(&atoms, &bx);
            let mut cell = NeighborList::new(4.0, 0.5, kind);
            cell.build(&atoms, &bx);
            assert_eq!(oracle.natoms(), atoms.nlocal);
            for i in 0..atoms.nlocal {
                let mut a: Vec<u32> = oracle.neighbors(i).to_vec();
                let mut b: Vec<u32> = cell.neighbors(i).to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "atom {i} ({kind:?})");
            }
        }
    }

    #[test]
    fn fcc_coordination_numbers() {
        // FCC at cutoff between 1st (a/√2 ≈ 2.556) and 2nd (a ≈ 3.615)
        // shells must see exactly 12 neighbours per atom.
        let (bx, atoms) = fcc_copper(4, 4, 4);
        let mut nl = NeighborList::new(3.0, 0.0, ListKind::Full);
        nl.build(&atoms, &bx);
        for i in 0..atoms.nlocal {
            assert_eq!(nl.neighbors(i).len(), 12, "atom {i}");
        }
        // Including the 2nd shell (6 more) at cutoff 3.7.
        let mut nl2 = NeighborList::new(3.7, 0.0, ListKind::Full);
        nl2.build(&atoms, &bx);
        for i in 0..atoms.nlocal {
            assert_eq!(nl2.neighbors(i).len(), 18, "atom {i}");
        }
    }

    #[test]
    fn half_list_stores_each_pair_once() {
        let (bx, atoms) = fcc_copper(4, 4, 4);
        let mut half = NeighborList::new(3.0, 0.3, ListKind::Half);
        let mut full = NeighborList::new(3.0, 0.3, ListKind::Full);
        half.build(&atoms, &bx);
        full.build(&atoms, &bx);
        assert_eq!(2 * half.total_neighbors(), full.total_neighbors());
    }

    #[test]
    fn rebuild_triggers_on_drift() {
        let (bx, mut atoms) = fcc_copper(4, 4, 4);
        let mut nl = NeighborList::new(3.0, 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        assert!(!nl.needs_rebuild(&atoms, &bx));
        // Move one atom by 0.4 Å (< skin/2): still fine.
        atoms.pos[5].x += 0.4;
        assert!(!nl.needs_rebuild(&atoms, &bx));
        // Past skin/2: rebuild required.
        atoms.pos[5].x += 0.2;
        assert!(nl.needs_rebuild(&atoms, &bx));
        nl.build(&atoms, &bx);
        assert!(!nl.needs_rebuild(&atoms, &bx));
        assert_eq!(nl.builds, 2);
    }

    #[test]
    fn ghost_mode_uses_direct_distances() {
        use crate::atoms::{copper_species, Atoms};
        let bx = SimBox::cubic(20.0);
        let mut atoms = Atoms::new(copper_species());
        atoms.push_local(1, 0, Vec3::new(1.0, 1.0, 1.0), Vec3::ZERO);
        // A ghost just outside the box (image of an atom owned elsewhere).
        atoms.push_ghost(2, 0, Vec3::new(-1.0, 1.0, 1.0));
        let mut nl = NeighborList::new(3.0, 0.0, ListKind::Full);
        nl.build(&atoms, &bx);
        assert_eq!(nl.neighbors(0), &[1]);
    }

    #[test]
    fn water_neighbor_budget_matches_paper_scale() {
        use crate::lattice::water_box;
        // Paper §IV: at rc = 6 Å the neighbour counts are ~46 per H and
        // ~92 per O in liquid water (list budgets). A fresh lattice-built box
        // approximates liquid density, so counts should be in that vicinity.
        let (bx, atoms) = water_box(6, 6, 6, 3);
        let mut nl = NeighborList::new(6.0, 0.0, ListKind::Full);
        nl.build(&atoms, &bx);
        let mut per_type = [0.0f64; 2];
        let mut cnt = [0usize; 2];
        for i in 0..atoms.nlocal {
            per_type[atoms.typ[i] as usize] += nl.neighbors(i).len() as f64;
            cnt[atoms.typ[i] as usize] += 1;
        }
        let avg_o = per_type[0] / cnt[0] as f64;
        let avg_h = per_type[1] / cnt[1] as f64;
        // All species see the same density ⇒ same mean count (~90 at 6 Å
        // with 0.1 atoms/Å³). The paper's per-species budgets are upper
        // bounds; check the right order of magnitude.
        assert!(avg_o > 60.0 && avg_o < 130.0, "O avg {avg_o}");
        assert!(avg_h > 60.0 && avg_h < 130.0, "H avg {avg_h}");
    }
}
