//! LAMMPS "metal" unit system.
//!
//! Distances in ångström, energies in eV, time in picoseconds, masses in
//! g/mol, temperature in kelvin, pressure in bar — the unit system both
//! benchmark systems of the paper (copper at 1 fs/step, water at 0.5 fs/step)
//! are specified in.

/// Boltzmann constant, eV/K.
pub const KB: f64 = 8.617333262e-5;

/// Conversion so `a [Å/ps²] = FORCE_TO_ACCEL · F [eV/Å] / m [g/mol]`.
///
/// Derivation: 1 eV/Å = 1.602177e-9 N; 1 g/mol = 1.66054e-27 kg;
/// their ratio is 9.64853e17 m/s² = 9648.53 Å/ps².
pub const FORCE_TO_ACCEL: f64 = 9648.53306;

/// Conversion so `KE [eV] = 0.5 · MVV_TO_ENERGY · m [g/mol] · v² [Å²/ps²]`.
///
/// 1 g/mol · Å²/ps² = 1.0364269e-4 eV.
pub const MVV_TO_ENERGY: f64 = 1.0364269e-4;

/// Conversion from eV/Å³ to bar for the virial pressure.
///
/// 1 eV/Å³ = 1.602177e6 bar.
pub const EVA3_TO_BAR: f64 = 1.602176634e6;

/// Atomic mass of copper, g/mol.
pub const MASS_CU: f64 = 63.546;
/// Atomic mass of oxygen, g/mol.
pub const MASS_O: f64 = 15.9994;
/// Atomic mass of hydrogen, g/mol.
pub const MASS_H: f64 = 1.008;

/// FCC lattice constant of copper, Å.
pub const CU_LATTICE: f64 = 3.615;

/// One femtosecond, in ps.
pub const FEMTOSECOND: f64 = 1.0e-3;

/// Kinetic energy of one particle, eV.
#[inline]
pub fn kinetic_energy(mass: f64, v2: f64) -> f64 {
    0.5 * MVV_TO_ENERGY * mass * v2
}

/// Instantaneous temperature from total kinetic energy and degrees of freedom.
#[inline]
pub fn temperature(total_ke: f64, dof: usize) -> f64 {
    if dof == 0 {
        0.0
    } else {
        2.0 * total_ke / (dof as f64 * KB)
    }
}

/// Nanoseconds of simulated physical time per wall-clock day, given the
/// time-step in femtoseconds and the wall time per step in seconds — the
/// headline metric of the paper ("149 ns/day").
#[inline]
pub fn ns_per_day(timestep_fs: f64, seconds_per_step: f64) -> f64 {
    if seconds_per_step <= 0.0 {
        return f64::INFINITY;
    }
    let steps_per_day = 86_400.0 / seconds_per_step;
    steps_per_day * timestep_fs * 1.0e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        // FORCE_TO_ACCEL · MVV_TO_ENERGY should be ≈ 1 (both are the same
        // conversion seen from opposite directions: eV per g/mol·Å²/ps²).
        assert!((FORCE_TO_ACCEL * MVV_TO_ENERGY - 1.0).abs() < 1e-5);
    }

    #[test]
    fn temperature_of_known_ke() {
        // 3N/2 kB T = KE: with N=100 atoms (dof = 300) at T=300 K.
        let ke = 1.5 * 100.0 * KB * 300.0;
        assert!((temperature(ke, 300) - 300.0).abs() < 1e-9);
        assert_eq!(temperature(1.0, 0), 0.0);
    }

    #[test]
    fn ns_per_day_reproduces_paper_arithmetic() {
        // The paper's 149 ns/day for copper at 1 fs/step means
        // 149e6 steps/day ⇒ 5.80e-4 s/step.
        let s_per_step = 86_400.0 / 149.0e6;
        assert!((ns_per_day(1.0, s_per_step) - 149.0).abs() < 1e-9);
        // Water at 0.5 fs: same wall speed gives half the ns/day.
        assert!((ns_per_day(0.5, s_per_step) - 74.5).abs() < 1e-9);
        assert!(ns_per_day(1.0, 0.0).is_infinite());
    }
}
