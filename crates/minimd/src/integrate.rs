//! Time integration: velocity-Verlet with optional thermostats, and
//! Maxwell–Boltzmann velocity initialization.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::atoms::Atoms;
use crate::simbox::SimBox;
use crate::units::{temperature, FORCE_TO_ACCEL, KB, MVV_TO_ENERGY};
use crate::vec3::Vec3;

/// Thermostat applied inside the integrator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Thermostat {
    /// Pure NVE (no thermostat).
    None,
    /// Berendsen weak coupling toward `t_target` with time constant `tau_ps`.
    Berendsen {
        /// Target temperature, K.
        t_target: f64,
        /// Coupling time constant, ps.
        tau_ps: f64,
    },
    /// Velocity rescale every step (hard thermostat for equilibration).
    Rescale {
        /// Target temperature, K.
        t_target: f64,
    },
    /// Langevin dynamics: friction + matched random kicks (fluctuation–
    /// dissipation), `γ = 1/damp_ps`.
    Langevin {
        /// Target temperature, K.
        t_target: f64,
        /// Damping time constant, ps.
        damp_ps: f64,
        /// RNG seed (deterministic trajectories).
        seed: u64,
    },
}

/// Velocity-Verlet integrator.
#[derive(Clone, Debug)]
pub struct VelocityVerlet {
    /// Time-step, ps.
    pub dt: f64,
    /// Thermostat mode.
    pub thermostat: Thermostat,
    /// Steps taken (streams the Langevin noise deterministically).
    step_count: u64,
}

impl VelocityVerlet {
    /// An NVE integrator with time-step `dt` picoseconds.
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0);
        VelocityVerlet { dt, thermostat: Thermostat::None, step_count: 0 }
    }

    /// First half-kick plus drift: `v += a·dt/2; x += v·dt` (wrapping into
    /// the box). Call before recomputing forces.
    pub fn first_half(&self, atoms: &mut Atoms, bx: &SimBox) {
        let dt = self.dt;
        for i in 0..atoms.nlocal {
            let inv_m = FORCE_TO_ACCEL / atoms.mass(i);
            let a = atoms.force[i] * inv_m;
            atoms.vel[i] += a * (0.5 * dt);
            let p = atoms.pos[i] + atoms.vel[i] * dt;
            atoms.pos[i] = bx.wrap(p);
        }
    }

    /// First half-kick plus drift *without* wrapping — the distributed
    /// frame keeps coordinates unwrapped between exchanges (LAMMPS remaps
    /// only at exchange time; wrapping mid-interval would teleport
    /// boundary-crossing atoms across the periodic box and break the
    /// per-rank direct-distance frame).
    pub fn first_half_unwrapped(&self, atoms: &mut Atoms) {
        let dt = self.dt;
        for i in 0..atoms.nlocal {
            let inv_m = FORCE_TO_ACCEL / atoms.mass(i);
            let a = atoms.force[i] * inv_m;
            atoms.vel[i] += a * (0.5 * dt);
            atoms.pos[i] += atoms.vel[i] * dt;
        }
    }

    /// Second half-kick after the new forces: `v += a·dt/2`, then thermostat.
    pub fn second_half(&mut self, atoms: &mut Atoms) {
        self.step_count += 1;
        let dt = self.dt;
        for i in 0..atoms.nlocal {
            let inv_m = FORCE_TO_ACCEL / atoms.mass(i);
            atoms.vel[i] += atoms.force[i] * inv_m * (0.5 * dt);
        }
        match self.thermostat {
            Thermostat::None => {}
            Thermostat::Berendsen { t_target, tau_ps } => {
                let t = current_temperature(atoms);
                if t > 1e-12 {
                    let lambda = (1.0 + dt / tau_ps * (t_target / t - 1.0)).max(0.0).sqrt();
                    for v in &mut atoms.vel[..atoms.nlocal] {
                        *v = *v * lambda;
                    }
                }
            }
            Thermostat::Rescale { t_target } => {
                let t = current_temperature(atoms);
                if t > 1e-12 {
                    let lambda = (t_target / t).sqrt();
                    for v in &mut atoms.vel[..atoms.nlocal] {
                        *v = *v * lambda;
                    }
                }
            }
            Thermostat::Langevin { t_target, damp_ps, seed } => {
                // BBK-style post-kick: v ← v(1 − γdt) + σ√dt·ξ with
                // σ² = 2γ kB T / m (metal units fold in MVV_TO_ENERGY).
                let gamma = 1.0 / damp_ps;
                let decay = (1.0 - gamma * dt).max(0.0);
                let mut rng = StdRng::seed_from_u64(seed ^ self.step_count.wrapping_mul(0x9e3779b97f4a7c15));
                let gauss = |rng: &mut StdRng| -> f64 {
                    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.random_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                };
                for i in 0..atoms.nlocal {
                    let m = atoms.mass(i);
                    let sigma = (2.0 * gamma * KB * t_target / (MVV_TO_ENERGY * m)).sqrt()
                        * dt.sqrt();
                    for ax in 0..3 {
                        atoms.vel[i][ax] = atoms.vel[i][ax] * decay + sigma * gauss(&mut rng);
                    }
                }
            }
        }
    }
}

/// Total kinetic energy of the local atoms, eV.
pub fn kinetic_energy(atoms: &Atoms) -> f64 {
    (0..atoms.nlocal)
        .map(|i| 0.5 * MVV_TO_ENERGY * atoms.mass(i) * atoms.vel[i].norm2())
        .sum()
}

/// Instantaneous temperature (3N degrees of freedom), K.
pub fn current_temperature(atoms: &Atoms) -> f64 {
    temperature(kinetic_energy(atoms), 3 * atoms.nlocal)
}

/// Draw Maxwell–Boltzmann velocities at `t_kelvin`, remove the centre-of-mass
/// drift, and rescale to hit the target temperature exactly.
pub fn init_velocities(atoms: &mut Atoms, t_kelvin: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gaussian = move |rng: &mut StdRng| -> f64 {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    for i in 0..atoms.nlocal {
        // σ_v = sqrt(kB T / m) in metal units (Å/ps).
        let sigma = (KB * t_kelvin / (MVV_TO_ENERGY * atoms.mass(i))).sqrt();
        atoms.vel[i] = Vec3::new(gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng)) * sigma;
    }
    remove_com_drift(atoms);
    // Exact rescale to the target.
    let t = current_temperature(atoms);
    if t > 1e-12 && t_kelvin > 0.0 {
        let lambda = (t_kelvin / t).sqrt();
        for v in &mut atoms.vel[..atoms.nlocal] {
            *v = *v * lambda;
        }
    }
}

/// Subtract the mass-weighted mean velocity so total momentum is zero.
pub fn remove_com_drift(atoms: &mut Atoms) {
    let mut p = Vec3::ZERO;
    let mut m_tot = 0.0;
    for i in 0..atoms.nlocal {
        let m = atoms.mass(i);
        p += atoms.vel[i] * m;
        m_tot += m;
    }
    if m_tot > 0.0 {
        let v_com = p / m_tot;
        for v in &mut atoms.vel[..atoms.nlocal] {
            *v -= v_com;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::fcc_copper;

    #[test]
    fn init_velocities_hits_target_temperature() {
        let (_, mut atoms) = fcc_copper(3, 3, 3);
        init_velocities(&mut atoms, 300.0, 42);
        assert!((current_temperature(&atoms) - 300.0).abs() < 1e-9);
        // Zero total momentum.
        let p: Vec3 = (0..atoms.nlocal).fold(Vec3::ZERO, |acc, i| acc + atoms.vel[i] * atoms.mass(i));
        assert!(p.norm() < 1e-9);
    }

    #[test]
    fn free_particle_moves_ballistically() {
        let bx = SimBox::cubic(100.0);
        let mut atoms = Atoms::new(crate::atoms::copper_species());
        atoms.push_local(1, 0, Vec3::new(10.0, 10.0, 10.0), Vec3::new(2.0, 0.0, -1.0));
        let mut vv = VelocityVerlet::new(0.001);
        for _ in 0..1000 {
            vv.first_half(&mut atoms, &bx);
            // No forces: second half-kick with zero force.
            vv.second_half(&mut atoms);
        }
        // After 1 ps at (2, 0, -1) Å/ps: displacement (2, 0, -1) Å.
        assert!((atoms.pos[0].x - 12.0).abs() < 1e-9);
        assert!((atoms.pos[0].z - 9.0).abs() < 1e-9);
    }

    #[test]
    fn rescale_thermostat_clamps_temperature() {
        let (bx, mut atoms) = fcc_copper(3, 3, 3);
        init_velocities(&mut atoms, 600.0, 1);
        let mut vv = VelocityVerlet::new(0.001);
        vv.thermostat = Thermostat::Rescale { t_target: 300.0 };
        vv.first_half(&mut atoms, &bx);
        vv.second_half(&mut atoms);
        assert!((current_temperature(&atoms) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn langevin_thermalizes_free_particles() {
        // Pure Langevin on force-free particles: velocities relax to the
        // Maxwell-Boltzmann distribution at the target temperature.
        let bx = SimBox::cubic(200.0);
        let mut atoms = Atoms::new(crate::atoms::copper_species());
        for i in 0..500u64 {
            atoms.push_local(i + 1, 0, Vec3::new(i as f64 * 0.3, 0.0, 0.0), Vec3::ZERO);
        }
        let mut vv = VelocityVerlet::new(0.002);
        vv.thermostat = Thermostat::Langevin { t_target: 300.0, damp_ps: 0.05, seed: 11 };
        for _ in 0..2000 {
            vv.first_half(&mut atoms, &bx);
            atoms.zero_forces();
            vv.second_half(&mut atoms);
        }
        let t = current_temperature(&atoms);
        assert!((t - 300.0).abs() < 45.0, "Langevin equilibrium T = {t}");
    }

    #[test]
    fn langevin_is_deterministic_per_seed() {
        let bx = SimBox::cubic(50.0);
        let run = |seed: u64| {
            let mut atoms = Atoms::new(crate::atoms::copper_species());
            atoms.push_local(1, 0, Vec3::new(25.0, 25.0, 25.0), Vec3::ZERO);
            let mut vv = VelocityVerlet::new(0.001);
            vv.thermostat = Thermostat::Langevin { t_target: 300.0, damp_ps: 0.1, seed };
            for _ in 0..50 {
                vv.first_half(&mut atoms, &bx);
                atoms.zero_forces();
                vv.second_half(&mut atoms);
            }
            atoms.vel[0]
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn berendsen_relaxes_toward_target() {
        let (bx, mut atoms) = fcc_copper(3, 3, 3);
        init_velocities(&mut atoms, 600.0, 2);
        let mut vv = VelocityVerlet::new(0.001);
        vv.thermostat = Thermostat::Berendsen { t_target: 300.0, tau_ps: 0.01 };
        let t0 = current_temperature(&atoms);
        for _ in 0..50 {
            vv.first_half(&mut atoms, &bx);
            atoms.zero_forces();
            vv.second_half(&mut atoms);
        }
        let t1 = current_temperature(&atoms);
        assert!(t1 < t0, "cooling toward target");
        assert!((t1 - 300.0).abs() < 20.0, "T after 50 steps: {t1}");
    }
}
