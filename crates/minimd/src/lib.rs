//! # minimd — the LAMMPS substrate
//!
//! DeePMD-kit delegates all molecular-dynamics mechanics to LAMMPS: atom
//! storage, domain decomposition, neighbour lists, ghost-region bookkeeping,
//! time integration, and thermodynamic outputs. This crate rebuilds that
//! substrate from scratch:
//!
//! * [`units`] — LAMMPS "metal" unit system (Å, eV, ps, g/mol);
//! * [`vec3`] — minimal 3-vector math;
//! * [`simbox`] — orthorhombic periodic box, wrapping and minimum image;
//! * [`atoms`] — structure-of-arrays atom storage with ghost partitioning;
//! * [`lattice`] — FCC copper and water-box builders for the paper's two
//!   benchmark systems;
//! * [`neighbor`] — cell lists and Verlet lists with skin and the paper's
//!   rebuild-every-50-steps policy;
//! * [`potential`] — analytic force fields: Lennard-Jones, Morse, an EAM
//!   copper model and a flexible 3-site water surrogate. These stand in for
//!   the AIMD reference data used to train Deep Potential models;
//! * [`domain`] — spatial decomposition onto an `px × py × pz` rank grid,
//!   node grouping (4 ranks/node), sub-box and node-box geometry, ghost
//!   region computation;
//! * [`integrate`] — velocity-Verlet, Maxwell–Boltzmann initialization,
//!   Berendsen and Langevin thermostats;
//! * [`compute`] — kinetic energy, temperature, virial pressure, radial
//!   distribution functions, mean-squared displacement;
//! * [`migrate`] — owner exchange of "flying atoms" at rebuild time;
//! * [`dump`] — extended-XYZ trajectories and LAMMPS-style thermo logs;
//! * [`sim`] — a single-process simulation driver tying it all together.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod atoms;
pub mod compute;
pub mod domain;
pub mod dump;
pub mod integrate;
pub mod lattice;
pub mod migrate;
pub mod neighbor;
pub mod potential;
pub mod sim;
pub mod simbox;
pub mod units;
pub mod vec3;

pub use atoms::Atoms;
pub use simbox::SimBox;
pub use vec3::Vec3;
