//! Trajectory and thermodynamic output: extended-XYZ frames and a
//! LAMMPS-style thermo log, writable to any `io::Write` sink.

use std::io::{self, Write};

use crate::atoms::Atoms;
use crate::sim::Thermo;
use crate::simbox::SimBox;

/// Write one extended-XYZ frame (`.xyz` with a `Lattice=` comment readable
/// by OVITO/ASE).
pub fn write_xyz_frame<W: Write>(w: &mut W, atoms: &Atoms, bx: &SimBox, step: u64) -> io::Result<()> {
    writeln!(w, "{}", atoms.nlocal)?;
    let l = bx.lengths();
    writeln!(
        w,
        "Lattice=\"{} 0 0 0 {} 0 0 0 {}\" Properties=species:S:1:pos:R:3 Step={step}",
        l.x, l.y, l.z
    )?;
    for i in 0..atoms.nlocal {
        let name = &atoms.species[atoms.typ[i] as usize].name;
        let p = atoms.pos[i];
        writeln!(w, "{name} {:.8} {:.8} {:.8}", p.x, p.y, p.z)?;
    }
    Ok(())
}

/// A thermo logger: buffers rows, renders a LAMMPS-style table.
#[derive(Clone, Debug, Default)]
pub struct ThermoLog {
    rows: Vec<Thermo>,
}

impl ThermoLog {
    /// Empty log.
    pub fn new() -> Self {
        ThermoLog::default()
    }

    /// Record a snapshot.
    pub fn push(&mut self, t: Thermo) {
        self.rows.push(t);
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[Thermo] {
        &self.rows
    }

    /// Render as a fixed-width table (Step / PotEng / KinEng / TotEng /
    /// Temp / Press — the classic LAMMPS thermo columns).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "    Step        PotEng        KinEng        TotEng       Temp      Press\n",
        );
        for t in &self.rows {
            out.push_str(&format!(
                "{:8}  {:12.5}  {:12.5}  {:12.5}  {:9.2}  {:9.1}\n",
                t.step, t.pe, t.ke, t.etotal, t.temperature, t.pressure
            ));
        }
        out
    }

    /// Write the rendered table to a sink.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.render().as_bytes())
    }

    /// Drift of total energy between the first and last rows, per
    /// reference: `|E_last − E_first|` (eV).
    pub fn energy_drift(&self) -> f64 {
        match (self.rows.first(), self.rows.last()) {
            (Some(a), Some(b)) => (b.etotal - a.etotal).abs(),
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::water_box;

    #[test]
    fn xyz_frame_round_trips_through_a_buffer() {
        let (bx, atoms) = water_box(2, 2, 2, 1);
        let mut buf = Vec::new();
        write_xyz_frame(&mut buf, &atoms, &bx, 42).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), atoms.nlocal.to_string());
        let header = lines.next().unwrap();
        assert!(header.contains("Lattice=") && header.contains("Step=42"));
        // Species names appear with the right multiplicity: 1 O + 2 H per
        // molecule.
        let o_count = text.lines().filter(|l| l.starts_with("O ")).count();
        let h_count = text.lines().filter(|l| l.starts_with("H ")).count();
        assert_eq!(o_count, atoms.nlocal / 3);
        assert_eq!(h_count, 2 * atoms.nlocal / 3);
    }

    #[test]
    fn thermo_log_renders_and_tracks_drift() {
        let mut log = ThermoLog::new();
        assert!(log.is_empty());
        log.push(Thermo { step: 0, pe: -10.0, ke: 1.0, etotal: -9.0, temperature: 300.0, pressure: 0.0 });
        log.push(Thermo { step: 50, pe: -10.2, ke: 1.1, etotal: -9.1, temperature: 310.0, pressure: 5.0 });
        assert_eq!(log.len(), 2);
        let s = log.render();
        assert!(s.contains("Step") && s.contains("-9.10000"));
        assert!((log.energy_drift() - 0.1).abs() < 1e-12);
        let mut sink = Vec::new();
        log.write_to(&mut sink).unwrap();
        assert!(!sink.is_empty());
    }
}
