//! Analytic force fields.
//!
//! These play the role of the *ab initio* reference data in the
//! reproduction: Deep Potential models (crate `deepmd`) are trained against
//! energies and forces produced by these potentials, exactly as the real
//! DeePMD-kit models are trained against DFT labels.
//!
//! * [`lj`] — Lennard-Jones (classic baseline, used in tests and examples);
//! * [`morse`] — Morse pair potential;
//! * [`eam`] — Sutton–Chen embedded-atom copper (the many-body "truth" for
//!   the paper's 0.54 M-atom Cu system);
//! * [`water`] — a flexible 3-site water surrogate (harmonic bonds/angles +
//!   O–O Lennard-Jones + Wolf-damped Coulomb) for the 0.56 M-atom H₂O
//!   system.

pub mod eam;
pub mod lj;
pub mod morse;
pub mod water;

use crate::atoms::Atoms;
use crate::neighbor::NeighborList;
use crate::simbox::SimBox;
use crate::vec3::Vec3;

/// Scalars produced by one force evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PotentialOutput {
    /// Total potential energy of the local atoms, eV.
    pub energy: f64,
    /// Scalar virial `Σ r_ij·f_ij` (for the pressure), eV.
    pub virial: f64,
}

/// Wall-clock breakdown of one force evaluation into the pipeline phases
/// the paper profiles (§IV): descriptor (environment-matrix) assembly,
/// embedding-net inference, and fitting-net inference plus the force
/// backward pass. All in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ForcePhases {
    /// Environment-matrix construction (smooth switching, displacements).
    pub descriptor_s: f64,
    /// Embedding-net forward + gradient (the GEMM-heavy phase).
    pub embedding_s: f64,
    /// Fitting-net forward/backward and the per-neighbour chain rule.
    pub fitting_s: f64,
    /// Deterministic chunk-ordered merge of per-chunk force buffers and
    /// energy/virial partials (single-threaded by construction).
    pub reduction_s: f64,
}

impl ForcePhases {
    /// Sum of the recorded phases.
    pub fn total(&self) -> f64 {
        self.descriptor_s + self.embedding_s + self.fitting_s + self.reduction_s
    }
}

/// A force field evaluated over a neighbour list.
///
/// Implementations add forces into `atoms.force` (callers zero it first) and
/// return energy and virial. Positions may include ghosts; forces are
/// accumulated on every stored atom (ghost forces are reverse-communicated
/// by the comm layer in distributed runs — "Newton's law on" in the paper).
pub trait Potential: Send + Sync {
    /// Evaluate forces, energy and virial.
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput;

    /// Interaction cutoff, Å (the neighbour list must use at least this).
    fn cutoff(&self) -> f64;

    /// Human-readable name for logs.
    fn name(&self) -> &'static str;

    /// Per-phase wall times of the most recent [`compute`](Self::compute)
    /// call, when the implementation records them (the Deep Potential
    /// engine does; analytic pair potentials return `None`).
    fn phase_times(&self) -> Option<ForcePhases> {
        None
    }
}

/// Minimum-image or direct displacement depending on ghost presence —
/// the one geometry rule every potential shares.
#[inline]
pub(crate) fn pair_disp(atoms: &Atoms, bx: &SimBox, i: usize, j: usize) -> Vec3 {
    if atoms.nghost() == 0 {
        bx.min_image(atoms.pos[i], atoms.pos[j])
    } else {
        atoms.pos[i] - atoms.pos[j]
    }
}

/// Central-difference force check: returns the maximum absolute difference
/// between analytic forces and −∂E/∂x over `n_probe` randomly chosen
/// coordinates. Test utility shared by every potential's test module.
#[cfg(test)]
pub(crate) fn finite_difference_force_error(
    pot: &dyn Potential,
    atoms: &mut Atoms,
    bx: &SimBox,
    n_probe: usize,
    seed: u64,
) -> f64 {
    use crate::neighbor::ListKind;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let mut nl = NeighborList::new(pot.cutoff(), 1.0, ListKind::Full);
    nl.build(atoms, bx);
    atoms.zero_forces();
    pot.compute(atoms, &nl, bx);
    let analytic = atoms.force.clone();

    let mut rng = StdRng::seed_from_u64(seed);
    let h = 1e-6;
    let mut worst: f64 = 0.0;
    for _ in 0..n_probe {
        let i = rng.random_range(0..atoms.nlocal);
        let d = rng.random_range(0..3usize);
        let orig = atoms.pos[i][d];
        atoms.pos[i][d] = orig + h;
        nl.build(atoms, bx);
        atoms.zero_forces();
        let ep = pot.compute(atoms, &nl, bx).energy;
        atoms.pos[i][d] = orig - h;
        nl.build(atoms, bx);
        atoms.zero_forces();
        let em = pot.compute(atoms, &nl, bx).energy;
        atoms.pos[i][d] = orig;
        let fd = -(ep - em) / (2.0 * h);
        worst = worst.max((fd - analytic[i][d]).abs());
    }
    nl.build(atoms, bx);
    worst
}
