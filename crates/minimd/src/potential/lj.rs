//! Lennard-Jones 12-6 pair potential with energy shift at the cutoff.

use super::{pair_disp, Potential, PotentialOutput};
use crate::atoms::Atoms;
use crate::neighbor::{ListKind, NeighborList};
use crate::simbox::SimBox;

/// `V(r) = 4ε[(σ/r)¹² − (σ/r)⁶] − V(rc)`, truncated and shifted.
#[derive(Clone, Copy, Debug)]
pub struct LennardJones {
    /// Well depth ε, eV.
    pub epsilon: f64,
    /// Zero-crossing distance σ, Å.
    pub sigma: f64,
    /// Cutoff radius, Å.
    pub rcut: f64,
    /// Energy shift so V(rcut) = 0 (precomputed).
    shift: f64,
}

impl LennardJones {
    /// Build with an energy shift making the potential continuous at `rcut`.
    pub fn new(epsilon: f64, sigma: f64, rcut: f64) -> Self {
        assert!(epsilon > 0.0 && sigma > 0.0 && rcut > sigma);
        let sr6 = (sigma / rcut).powi(6);
        let shift = 4.0 * epsilon * (sr6 * sr6 - sr6);
        LennardJones { epsilon, sigma, rcut, shift }
    }

    /// Generic argon-like parameters in metal units (for tests/examples).
    pub fn argon_like() -> Self {
        LennardJones::new(0.0104, 3.40, 8.5)
    }

    /// Pair energy and `f/r` scalar at squared distance `r2` (inside cutoff).
    #[inline]
    fn pair(&self, r2: f64) -> (f64, f64) {
        let inv_r2 = 1.0 / r2;
        let sr2 = self.sigma * self.sigma * inv_r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        let e = 4.0 * self.epsilon * (sr12 - sr6) - self.shift;
        // f/r = 24ε(2·sr12 − sr6)/r².
        let f_over_r = 24.0 * self.epsilon * (2.0 * sr12 - sr6) * inv_r2;
        (e, f_over_r)
    }
}

impl Potential for LennardJones {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        let rc2 = self.rcut * self.rcut;
        let mut energy = 0.0;
        let mut virial = 0.0;
        let half = nl.kind == ListKind::Half;
        for i in 0..atoms.nlocal {
            for &ju in nl.neighbors(i) {
                let j = ju as usize;
                // A full list visits each pair twice; halve shared terms.
                let scale = if half { 1.0 } else { 0.5 };
                let d = pair_disp(atoms, bx, i, j);
                let r2 = d.norm2();
                if r2 > rc2 || r2 == 0.0 {
                    continue;
                }
                let (e, f_over_r) = self.pair(r2);
                let f = d * f_over_r;
                if half {
                    atoms.force[i] += f;
                    atoms.force[j] -= f;
                } else {
                    atoms.force[i] += f * 1.0;
                }
                energy += e * scale;
                virial += f.dot(d) * scale;
            }
        }
        PotentialOutput { energy, virial }
    }

    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn name(&self) -> &'static str {
        "lennard-jones"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::{copper_species, Atoms};
    use crate::neighbor::NeighborList;
    use crate::potential::finite_difference_force_error;
    use crate::vec3::Vec3;

    fn dimer(r: f64) -> (SimBox, Atoms) {
        let bx = SimBox::cubic(50.0);
        let mut atoms = Atoms::new(copper_species());
        atoms.push_local(1, 0, Vec3::new(20.0, 20.0, 20.0), Vec3::ZERO);
        atoms.push_local(2, 0, Vec3::new(20.0 + r, 20.0, 20.0), Vec3::ZERO);
        (bx, atoms)
    }

    #[test]
    fn minimum_at_r_min() {
        // LJ minimum sits at 2^(1/6) σ with depth −ε (up to the shift).
        let lj = LennardJones::new(0.01, 3.0, 10.0);
        let rmin = 2.0f64.powf(1.0 / 6.0) * 3.0;
        let (_, f_over_r) = lj.pair(rmin * rmin);
        assert!(f_over_r.abs() < 1e-12, "force must vanish at the minimum");
        let (e, _) = lj.pair(rmin * rmin);
        assert!((e - (-0.01 - (4.0 * 0.01 * ((3.0f64 / 10.0).powi(12) - (3.0f64 / 10.0).powi(6))))).abs() < 1e-9);
    }

    #[test]
    fn energy_shift_makes_cutoff_continuous() {
        let lj = LennardJones::new(0.01, 3.0, 9.0);
        let (e, _) = lj.pair(9.0 * 9.0 - 1e-9);
        assert!(e.abs() < 1e-9, "shifted energy at cutoff: {e}");
    }

    #[test]
    fn dimer_forces_are_equal_and_opposite() {
        let lj = LennardJones::new(0.0104, 3.4, 8.5);
        let (bx, mut atoms) = dimer(3.5);
        let mut nl = NeighborList::new(lj.cutoff(), 0.5, ListKind::Half);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        let out = lj.compute(&mut atoms, &nl, &bx);
        assert!(out.energy < 0.0, "attractive at 3.5 Å");
        assert!((atoms.force[0] + atoms.force[1]).norm() < 1e-14);
        assert!(atoms.force[0].x < 0.0, "atom 0 pulled toward atom 1");
    }

    #[test]
    fn half_and_full_lists_agree() {
        let lj = LennardJones::argon_like();
        let (bx, atoms0) = crate::lattice::fcc_lattice(4, 4, 4, 5.2);
        for kind in [ListKind::Half, ListKind::Full] {
            let mut atoms = atoms0.clone();
            let mut nl = NeighborList::new(lj.cutoff(), 0.5, kind);
            nl.build(&atoms, &bx);
            atoms.zero_forces();
            let out = lj.compute(&mut atoms, &nl, &bx);
            // Compare against the half-list reference.
            if kind == ListKind::Half {
                continue;
            }
            let mut ref_atoms = atoms0.clone();
            let mut ref_nl = NeighborList::new(lj.cutoff(), 0.5, ListKind::Half);
            ref_nl.build(&ref_atoms, &bx);
            ref_atoms.zero_forces();
            let ref_out = lj.compute(&mut ref_atoms, &ref_nl, &bx);
            assert!((out.energy - ref_out.energy).abs() < 1e-9);
            assert!((out.virial - ref_out.virial).abs() < 1e-9);
            // Full list only adds force on i; every local atom must match.
            for i in 0..atoms.nlocal {
                assert!((atoms.force[i] - ref_atoms.force[i]).norm() < 1e-9, "atom {i}");
            }
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let lj = LennardJones::argon_like();
        let (bx, mut atoms) = crate::lattice::fcc_lattice(4, 4, 4, 5.2);
        // Perturb off the lattice so forces are non-zero.
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.x += 0.05 * ((k % 7) as f64 - 3.0) / 3.0;
            p.y += 0.04 * ((k % 5) as f64 - 2.0) / 2.0;
        }
        let err = finite_difference_force_error(&lj, &mut atoms, &bx, 12, 42);
        assert!(err < 1e-6, "max |F_fd − F| = {err}");
    }
}
