//! Flexible 3-site water surrogate.
//!
//! Stands in for the AIMD reference of the paper's 0.56 M-atom water system.
//! The functional form is a flexible SPC-style model:
//!
//! * intramolecular: harmonic O–H bonds and a harmonic H–O–H angle;
//! * intermolecular: Lennard-Jones on O–O plus Wolf-damped Coulomb between
//!   all site pairs of *different* molecules (charges −2q on O, +q on H).
//!
//! Molecular topology is implicit in atom ids: the builders emit O, H, H per
//! molecule, so `molecule = (id − 1) / 3` — stable across ghost exchange.
//!
//! The Wolf method replaces the Ewald sum with a damped, charge-neutralized
//! pairwise term `q_i q_j [erfc(αr)/r − erfc(αrc)/rc]`, which is accurate
//! for bulk water at α ≈ 0.2 Å⁻¹ and keeps the potential strictly local —
//! matching DeePMD's locality assumption (everything within `r_c`).

use super::{pair_disp, Potential, PotentialOutput};
use crate::atoms::Atoms;
use crate::neighbor::{ListKind, NeighborList};
use crate::simbox::SimBox;

/// Coulomb constant, eV·Å/e².
pub const COULOMB: f64 = 14.399645;

/// Parameters of the flexible water surrogate.
#[derive(Clone, Copy, Debug)]
pub struct WaterSurrogate {
    /// O–H harmonic bond constant, eV/Å².
    pub k_bond: f64,
    /// O–H equilibrium length, Å.
    pub r0: f64,
    /// H–O–H harmonic angle constant, eV/rad².
    pub k_angle: f64,
    /// Equilibrium angle, rad.
    pub theta0: f64,
    /// O–O Lennard-Jones ε, eV.
    pub lj_eps: f64,
    /// O–O Lennard-Jones σ, Å.
    pub lj_sigma: f64,
    /// Hydrogen charge (+q), e; oxygen carries −2q.
    pub q_h: f64,
    /// Wolf damping parameter α, 1/Å.
    pub alpha: f64,
    /// Cutoff, Å (paper uses 6 Å for water).
    pub rcut: f64,
}

impl WaterSurrogate {
    /// SPC/Fw-like parameters (Wu, Tepper & Voth 2006 geometry/charges,
    /// harmonic flexibility), cutoff per the paper's water runs.
    pub fn standard(rcut: f64) -> Self {
        WaterSurrogate {
            k_bond: 22.965,          // ≈ 529.6 kcal/mol/Å² (SPC/Fw) in eV/Å²
            r0: 1.012,
            k_angle: 1.6455,         // ≈ 37.95 kcal/mol/rad² in eV/rad²
            theta0: 113.24f64.to_radians(),
            lj_eps: 0.006739,        // 0.1554 kcal/mol
            lj_sigma: 3.165492,
            q_h: 0.41,
            alpha: 0.2,
            rcut,
        }
    }

    /// Charge of species `typ` (0 = O, 1 = H).
    #[inline]
    fn charge(&self, typ: u32) -> f64 {
        if typ == 0 {
            -2.0 * self.q_h
        } else {
            self.q_h
        }
    }

    /// erfc via the Abramowitz–Stegun 7.1.26 rational approximation
    /// (|error| < 1.5e-7 — far below the surrogate's physical accuracy).
    #[inline]
    fn erfc(x: f64) -> f64 {
        let t = 1.0 / (1.0 + 0.3275911 * x);
        let poly = t
            * (0.254829592 + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
        poly * (-x * x).exp()
    }

    /// Damped-shifted-force (DSF) Coulomb energy and dV/dr for charge product
    /// `qq = q_i q_j` (Fennell & Gezelter 2006): the Wolf sum with an extra
    /// linear term so *both* energy and force vanish continuously at the
    /// cutoff — without it, pairs crossing `r_c` during NVE leak energy.
    #[inline]
    fn wolf(&self, qq: f64, r: f64) -> (f64, f64) {
        let a = self.alpha;
        let rc = self.rcut;
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        let e_rc = Self::erfc(a * rc) / rc;
        // Magnitude of dV/dr at the cutoff (per unit C·qq), used as the
        // force-shift slope.
        let f_rc = e_rc / rc + a * two_over_sqrt_pi * (-a * a * rc * rc).exp() / rc;
        let e = COULOMB * qq * (Self::erfc(a * r) / r - e_rc + f_rc * (r - rc));
        let dv = COULOMB
            * qq
            * (-Self::erfc(a * r) / (r * r) - a * two_over_sqrt_pi * (-a * a * r * r).exp() / r + f_rc);
        (e, dv)
    }

    /// Intramolecular bond + angle terms for the molecule holding local
    /// atoms `(o, h1, h2)`; adds forces, returns energy.
    fn intra(&self, atoms: &mut Atoms, bx: &SimBox, o: usize, h1: usize, h2: usize) -> f64 {
        let mut e = 0.0;
        // Bonds.
        for h in [h1, h2] {
            let d = pair_disp(atoms, bx, h, o); // from O to H
            let r = d.norm();
            let dr = r - self.r0;
            e += self.k_bond * dr * dr;
            let f = d * (-2.0 * self.k_bond * dr / r);
            atoms.force[h] += f;
            atoms.force[o] -= f;
        }
        // Angle.
        let d1 = pair_disp(atoms, bx, h1, o);
        let d2 = pair_disp(atoms, bx, h2, o);
        let (r1, r2) = (d1.norm(), d2.norm());
        let cos_t = (d1.dot(d2) / (r1 * r2)).clamp(-1.0, 1.0);
        let theta = cos_t.acos();
        let dtheta = theta - self.theta0;
        e += self.k_angle * dtheta * dtheta;
        // dE/dθ, chain rule through cosθ; guard the sinθ → 0 poles.
        let sin_t = (1.0 - cos_t * cos_t).sqrt().max(1e-8);
        let de_dcos = -2.0 * self.k_angle * dtheta / sin_t;
        // ∂cosθ/∂r_h1 etc.
        let dcos_d1 = (d2 / (r1 * r2)) - d1 * (cos_t / (r1 * r1));
        let dcos_d2 = (d1 / (r1 * r2)) - d2 * (cos_t / (r2 * r2));
        let f1 = dcos_d1 * (-de_dcos);
        let f2 = dcos_d2 * (-de_dcos);
        atoms.force[h1] += f1;
        atoms.force[h2] += f2;
        atoms.force[o] -= f1 + f2;
        e
    }
}

/// Molecule id of an atom from its global id (builder emits O,H,H per
/// molecule with 1-based ids).
#[inline]
pub fn molecule_of(id: u64) -> u64 {
    (id - 1) / 3
}

impl Potential for WaterSurrogate {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        assert_eq!(nl.kind, ListKind::Full, "water surrogate expects a full list");
        let rc2 = self.rcut * self.rcut;
        let mut energy = 0.0;
        let mut virial = 0.0;

        // Intermolecular nonbonded terms over the neighbour list.
        for i in 0..atoms.nlocal {
            let mol_i = molecule_of(atoms.id[i]);
            let typ_i = atoms.typ[i];
            let qi = self.charge(typ_i);
            for &ju in nl.neighbors(i) {
                let j = ju as usize;
                if molecule_of(atoms.id[j]) == mol_i {
                    continue; // intramolecular pairs are bonded terms
                }
                let d = pair_disp(atoms, bx, i, j);
                let r2 = d.norm2();
                if r2 > rc2 || r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let mut e_pair = 0.0;
                let mut dv_dr = 0.0;
                // O–O Lennard-Jones, truncated and shifted at the cutoff so
                // pairs crossing r_c don't inject energy.
                if typ_i == 0 && atoms.typ[j] == 0 {
                    let sr6 = (self.lj_sigma * self.lj_sigma / r2).powi(3);
                    let sr12 = sr6 * sr6;
                    let src6 = (self.lj_sigma / self.rcut).powi(6);
                    let shift = 4.0 * self.lj_eps * (src6 * src6 - src6);
                    e_pair += 4.0 * self.lj_eps * (sr12 - sr6) - shift;
                    dv_dr += 4.0 * self.lj_eps * (-12.0 * sr12 + 6.0 * sr6) / r;
                }
                // Wolf Coulomb between all intermolecular site pairs.
                let (ec, dc) = self.wolf(qi * self.charge(atoms.typ[j]), r);
                e_pair += ec;
                dv_dr += dc;
                // Full list: each visit applies the whole pair force on i,
                // shared scalars are halved.
                let f = d * (-dv_dr / r);
                atoms.force[i] += f;
                energy += 0.5 * e_pair;
                virial += 0.5 * f.dot(d);
            }
        }

        // Intramolecular terms, one pass per locally complete molecule.
        // (Distributed callers keep molecules whole within a rank.)
        let mut i = 0;
        while i < atoms.nlocal {
            if atoms.typ[i] == 0 && atoms.id[i] % 3 == 1 && i + 2 < atoms.nlocal {
                energy += self.intra(atoms, bx, i, i + 1, i + 2);
                i += 3;
            } else {
                i += 1;
            }
        }
        PotentialOutput { energy, virial }
    }

    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn name(&self) -> &'static str {
        "water-surrogate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::water_box;
    use crate::vec3::Vec3;
    use crate::neighbor::NeighborList;
    use crate::potential::finite_difference_force_error;

    #[test]
    fn erfc_reference_values() {
        assert!((WaterSurrogate::erfc(0.0) - 1.0).abs() < 2e-7);
        assert!((WaterSurrogate::erfc(1.0) - 0.15729920705).abs() < 2e-7);
        assert!((WaterSurrogate::erfc(2.0) - 0.00467773498).abs() < 2e-7);
    }

    #[test]
    fn monomer_equilibrium_geometry_has_small_force() {
        // A single molecule at its equilibrium geometry: bond terms vanish at
        // r0 / theta0 (builder geometry differs slightly, so relax check).
        let w = WaterSurrogate::standard(6.0);
        let bx = SimBox::cubic(30.0);
        let mut atoms = Atoms::new(crate::atoms::water_species());
        let half = w.theta0 / 2.0;
        atoms.push_local(1, 0, Vec3::new(15.0, 15.0, 15.0), Vec3::ZERO);
        atoms.push_local(
            2,
            1,
            Vec3::new(15.0 + w.r0 * half.cos(), 15.0 + w.r0 * half.sin(), 15.0),
            Vec3::ZERO,
        );
        atoms.push_local(
            3,
            1,
            Vec3::new(15.0 + w.r0 * half.cos(), 15.0 - w.r0 * half.sin(), 15.0),
            Vec3::ZERO,
        );
        let mut nl = NeighborList::new(w.cutoff(), 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        w.compute(&mut atoms, &nl, &bx);
        for i in 0..3 {
            assert!(atoms.force[i].norm() < 1e-9, "atom {i}: {:?}", atoms.force[i]);
        }
    }

    #[test]
    fn forces_match_finite_difference() {
        let w = WaterSurrogate::standard(6.0);
        let (bx, mut atoms) = water_box(5, 5, 5, 11);
        let err = finite_difference_force_error(&w, &mut atoms, &bx, 15, 23);
        assert!(err < 5e-5, "max |F_fd − F| = {err}");
    }

    #[test]
    fn net_force_vanishes() {
        let w = WaterSurrogate::standard(6.0);
        let (bx, mut atoms) = water_box(5, 5, 5, 4);
        let mut nl = NeighborList::new(w.cutoff(), 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        w.compute(&mut atoms, &nl, &bx);
        assert!(atoms.net_force().norm() < 1e-8, "{:?}", atoms.net_force());
    }

    #[test]
    fn molecule_of_id_convention() {
        assert_eq!(molecule_of(1), 0);
        assert_eq!(molecule_of(3), 0);
        assert_eq!(molecule_of(4), 1);
        assert_eq!(molecule_of(6), 1);
        assert_eq!(molecule_of(7), 2);
    }

    #[test]
    fn stretched_bond_is_restoring() {
        let w = WaterSurrogate::standard(6.0);
        let bx = SimBox::cubic(30.0);
        let mut atoms = Atoms::new(crate::atoms::water_species());
        atoms.push_local(1, 0, Vec3::new(15.0, 15.0, 15.0), Vec3::ZERO);
        atoms.push_local(2, 1, Vec3::new(15.0 + w.r0 + 0.2, 15.0, 15.0), Vec3::ZERO);
        atoms.push_local(3, 1, Vec3::new(15.0 - w.r0 * 0.3, 15.0 + w.r0, 15.0), Vec3::ZERO);
        let mut nl = NeighborList::new(w.cutoff(), 0.5, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        w.compute(&mut atoms, &nl, &bx);
        // The stretched H must be pulled back toward O (−x direction).
        assert!(atoms.force[1].x < 0.0, "{:?}", atoms.force[1]);
    }
}
