//! Sutton–Chen embedded-atom potential for copper.
//!
//! The many-body "ground truth" for the paper's copper benchmark. The
//! Sutton–Chen form is
//!
//! ```text
//! E = ε Σ_i [ ½ Σ_{j≠i} (a/r_ij)^n  −  c √ρ_i ],   ρ_i = Σ_{j≠i} (a/r_ij)^m
//! ```
//!
//! with the published copper parameters n = 9, m = 6, ε = 1.2382·10⁻² eV,
//! c = 39.432, a = 3.61 Å. Because the embedding term is a non-linear
//! function of the local density, forces couple pairs through both atoms'
//! densities — the same many-body structure a Deep Potential model has to
//! learn, which makes it a good training target.

use super::{pair_disp, Potential, PotentialOutput};
use crate::atoms::Atoms;
use crate::neighbor::{ListKind, NeighborList};
use crate::simbox::SimBox;

/// Sutton–Chen EAM parameters.
#[derive(Clone, Copy, Debug)]
pub struct SuttonChen {
    /// Energy scale ε, eV.
    pub eps: f64,
    /// Length scale a, Å.
    pub a: f64,
    /// Embedding strength c (dimensionless).
    pub c: f64,
    /// Repulsive exponent n.
    pub n: i32,
    /// Density exponent m.
    pub m: i32,
    /// Cutoff, Å.
    pub rcut: f64,
}

impl SuttonChen {
    /// Published copper parameters (Sutton & Chen 1990).
    pub fn copper(rcut: f64) -> Self {
        SuttonChen { eps: 1.2382e-2, a: 3.61, c: 39.432, n: 9, m: 6, rcut }
    }

    #[inline]
    fn phi(&self, r: f64) -> f64 {
        (self.a / r).powi(self.n)
    }

    #[inline]
    fn dphi_dr(&self, r: f64) -> f64 {
        -(self.n as f64) * (self.a / r).powi(self.n) / r
    }

    #[inline]
    fn rho_term(&self, r: f64) -> f64 {
        (self.a / r).powi(self.m)
    }

    #[inline]
    fn drho_dr(&self, r: f64) -> f64 {
        -(self.m as f64) * (self.a / r).powi(self.m) / r
    }

    /// Electron densities ρ_i for every stored atom (locals and ghosts —
    /// ghost densities are needed for forces on pairs that straddle the
    /// sub-box boundary; full neighbour information is only available for
    /// locals, so distributed callers must ensure the ghost halo is at least
    /// 2·rcut deep or reverse-communicate densities. The single-box path has
    /// no ghosts and is exact.)
    fn densities(&self, atoms: &Atoms, nl: &NeighborList, bx: &SimBox) -> Vec<f64> {
        let rc2 = self.rcut * self.rcut;
        let mut rho = vec![0.0; atoms.len()];
        for i in 0..atoms.nlocal {
            for &ju in nl.neighbors(i) {
                let j = ju as usize;
                let d = pair_disp(atoms, bx, i, j);
                let r2 = d.norm2();
                if r2 > rc2 || r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let t = self.rho_term(r);
                rho[i] += t;
                // Full lists visit (j, i) separately; only a half list needs
                // the symmetric update here.
                if nl.kind == ListKind::Half {
                    rho[j] += t;
                }
            }
        }
        rho
    }
}

impl Potential for SuttonChen {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        assert_eq!(nl.kind, ListKind::Full, "Sutton–Chen requires a full neighbour list");
        let rc2 = self.rcut * self.rcut;
        let rho = self.densities(atoms, nl, bx);

        let mut energy = 0.0;
        let mut virial = 0.0;
        for i in 0..atoms.nlocal {
            // Embedding energy −εc√ρ and half the pair repulsion.
            if rho[i] > 0.0 {
                energy -= self.eps * self.c * rho[i].sqrt();
            }
            let demb_drho_i = if rho[i] > 0.0 { -self.eps * self.c * 0.5 / rho[i].sqrt() } else { 0.0 };
            for &ju in nl.neighbors(i) {
                let j = ju as usize;
                let d = pair_disp(atoms, bx, i, j);
                let r2 = d.norm2();
                if r2 > rc2 || r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                energy += 0.5 * self.eps * self.phi(r);
                let demb_drho_j = if rho[j] > 0.0 { -self.eps * self.c * 0.5 / rho[j].sqrt() } else { 0.0 };
                // dE/dr for this pair: repulsion (shared) + both embeddings.
                let de_dr = self.eps * self.dphi_dr(r) + (demb_drho_i + demb_drho_j) * self.drho_dr(r);
                // Full list double-visits each pair: each visit applies the
                // full pair force to atom i only, which sums to the correct
                // equal-and-opposite pair once both visits run.
                let f = d * (-de_dr / r);
                atoms.force[i] += f;
                virial += 0.5 * f.dot(d);
            }
        }
        PotentialOutput { energy, virial }
    }

    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn name(&self) -> &'static str {
        "sutton-chen-eam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::fcc_copper;
    use crate::neighbor::NeighborList;
    use crate::potential::finite_difference_force_error;

    #[test]
    fn perfect_lattice_has_zero_force_and_negative_energy() {
        let sc = SuttonChen::copper(8.0);
        let (bx, mut atoms) = fcc_copper(6, 6, 6);
        let mut nl = NeighborList::new(sc.cutoff(), 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        let out = sc.compute(&mut atoms, &nl, &bx);
        // Symmetric environment ⇒ zero net force on every atom.
        for i in 0..atoms.nlocal {
            assert!(atoms.force[i].norm() < 1e-9, "atom {i}: {:?}", atoms.force[i]);
        }
        // Cohesive energy of Cu is ≈ −3.5 eV/atom experimentally; Sutton–Chen
        // at this cutoff should land in the right region.
        let e_per_atom = out.energy / atoms.nlocal as f64;
        assert!(e_per_atom < -2.0 && e_per_atom > -5.0, "E/atom = {e_per_atom}");
    }

    #[test]
    fn forces_match_finite_difference() {
        let sc = SuttonChen::copper(6.5);
        let (bx, mut atoms) = fcc_copper(5, 5, 5);
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.x += 0.08 * ((k % 5) as f64 - 2.0) / 2.0;
            p.y += 0.05 * ((k % 3) as f64 - 1.0);
        }
        let err = finite_difference_force_error(&sc, &mut atoms, &bx, 12, 7);
        assert!(err < 1e-5, "max |F_fd − F| = {err}");
    }

    #[test]
    fn net_force_is_zero_by_translation_invariance() {
        let sc = SuttonChen::copper(6.5);
        let (bx, mut atoms) = fcc_copper(5, 5, 5);
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.z += 0.07 * ((k % 11) as f64 - 5.0) / 5.0;
        }
        let mut nl = NeighborList::new(sc.cutoff(), 1.0, ListKind::Full);
        nl.build(&atoms, &bx);
        atoms.zero_forces();
        sc.compute(&mut atoms, &nl, &bx);
        assert!(atoms.net_force().norm() < 1e-8, "net force {:?}", atoms.net_force());
    }

    #[test]
    fn compression_raises_energy() {
        let sc = SuttonChen::copper(8.0);
        let (bx, mut a1) = crate::lattice::fcc_lattice(6, 6, 6, 3.615);
        let (bx2, mut a2) = crate::lattice::fcc_lattice(6, 6, 6, 3.2);
        let mut nl = NeighborList::new(sc.cutoff(), 1.0, ListKind::Full);
        nl.build(&a1, &bx);
        a1.zero_forces();
        let e_eq = sc.compute(&mut a1, &nl, &bx).energy;
        nl.build(&a2, &bx2);
        a2.zero_forces();
        let e_comp = sc.compute(&mut a2, &nl, &bx2).energy;
        assert!(e_comp > e_eq, "compressed lattice must be higher in energy");
    }
}
