//! Morse pair potential.

use super::{pair_disp, Potential, PotentialOutput};
use crate::atoms::Atoms;
use crate::neighbor::{ListKind, NeighborList};
use crate::simbox::SimBox;

/// `V(r) = D (1 − e^{−α(r−r₀)})² − D`, truncated and shifted at `rcut`.
#[derive(Clone, Copy, Debug)]
pub struct Morse {
    /// Well depth D, eV.
    pub d: f64,
    /// Stiffness α, 1/Å.
    pub alpha: f64,
    /// Equilibrium distance r₀, Å.
    pub r0: f64,
    /// Cutoff, Å.
    pub rcut: f64,
    shift: f64,
}

impl Morse {
    /// Build with the cutoff energy shift precomputed.
    pub fn new(d: f64, alpha: f64, r0: f64, rcut: f64) -> Self {
        assert!(d > 0.0 && alpha > 0.0 && r0 > 0.0 && rcut > r0);
        let x = 1.0 - (-alpha * (rcut - r0)).exp();
        let shift = d * x * x - d;
        Morse { d, alpha, r0, rcut, shift }
    }

    /// A classic copper parameterization (Girifalco & Weizer 1959):
    /// D = 0.3429 eV, α = 1.3588 Å⁻¹, r₀ = 2.866 Å.
    pub fn copper(rcut: f64) -> Self {
        Morse::new(0.3429, 1.3588, 2.866, rcut)
    }

    /// Pair energy and `f/r` at distance `r`.
    #[inline]
    fn pair(&self, r: f64) -> (f64, f64) {
        let ex = (-self.alpha * (r - self.r0)).exp();
        let one = 1.0 - ex;
        let e = self.d * one * one - self.d - self.shift;
        // dV/dr = 2 D α e^{-α(r-r0)} (1 - e^{-α(r-r0)}); force = -dV/dr.
        let dv_dr = 2.0 * self.d * self.alpha * ex * one;
        (e, -dv_dr / r)
    }
}

impl Potential for Morse {
    fn compute(&self, atoms: &mut Atoms, nl: &NeighborList, bx: &SimBox) -> PotentialOutput {
        let rc2 = self.rcut * self.rcut;
        let half = nl.kind == ListKind::Half;
        let mut energy = 0.0;
        let mut virial = 0.0;
        for i in 0..atoms.nlocal {
            for &ju in nl.neighbors(i) {
                let j = ju as usize;
                let d = pair_disp(atoms, bx, i, j);
                let r2 = d.norm2();
                if r2 > rc2 || r2 == 0.0 {
                    continue;
                }
                let r = r2.sqrt();
                let (e, f_over_r) = self.pair(r);
                let f = d * f_over_r;
                let scale = if half { 1.0 } else { 0.5 };
                if half {
                    atoms.force[i] += f;
                    atoms.force[j] -= f;
                } else {
                    atoms.force[i] += f;
                }
                energy += e * scale;
                virial += f.dot(d) * scale;
            }
        }
        PotentialOutput { energy, virial }
    }

    fn cutoff(&self) -> f64 {
        self.rcut
    }

    fn name(&self) -> &'static str {
        "morse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::finite_difference_force_error;

    #[test]
    fn minimum_at_r0() {
        let m = Morse::copper(8.0);
        let (_, f_over_r) = m.pair(m.r0);
        assert!(f_over_r.abs() < 1e-12);
        // Energy at minimum ≈ −D (up to the small cutoff shift).
        let (e, _) = m.pair(m.r0);
        assert!((e + m.d).abs() < 0.02);
    }

    #[test]
    fn repulsive_inside_attractive_outside() {
        let m = Morse::copper(8.0);
        let (_, f_in) = m.pair(2.0);
        let (_, f_out) = m.pair(4.0);
        assert!(f_in > 0.0, "repulsive inside r0");
        assert!(f_out < 0.0, "attractive outside r0");
    }

    #[test]
    fn forces_match_finite_difference() {
        let m = Morse::copper(6.0);
        let (bx, mut atoms) = crate::lattice::fcc_copper(4, 4, 4);
        for (k, p) in atoms.pos.iter_mut().enumerate() {
            p.z += 0.06 * ((k % 9) as f64 - 4.0) / 4.0;
        }
        let err = finite_difference_force_error(&m, &mut atoms, &bx, 10, 17);
        assert!(err < 1e-6, "max |F_fd − F| = {err}");
    }
}
