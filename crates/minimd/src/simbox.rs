//! Orthorhombic periodic simulation box.
//!
//! Both benchmark systems use fully periodic orthorhombic cells. The box
//! provides wrapping into the primary image and the minimum-image
//! displacement used by every potential and neighbour-list build.

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// An orthorhombic box `[lo, hi)³` with periodic boundaries on every face.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimBox {
    /// Lower corner.
    pub lo: Vec3,
    /// Upper corner.
    pub hi: Vec3,
}

impl SimBox {
    /// A box from the origin to `(lx, ly, lz)`.
    ///
    /// # Panics
    /// If any edge is not strictly positive.
    pub fn new(lx: f64, ly: f64, lz: f64) -> Self {
        assert!(lx > 0.0 && ly > 0.0 && lz > 0.0, "box edges must be positive");
        SimBox { lo: Vec3::ZERO, hi: Vec3::new(lx, ly, lz) }
    }

    /// A cubic box of edge `l` at the origin.
    pub fn cubic(l: f64) -> Self {
        SimBox::new(l, l, l)
    }

    /// Edge lengths.
    #[inline]
    pub fn lengths(&self) -> Vec3 {
        self.hi - self.lo
    }

    /// Volume, Å³.
    #[inline]
    pub fn volume(&self) -> f64 {
        let l = self.lengths();
        l.x * l.y * l.z
    }

    /// Wrap a position into the primary image `[lo, hi)`.
    #[inline]
    pub fn wrap(&self, mut p: Vec3) -> Vec3 {
        let l = self.lengths();
        for d in 0..3 {
            let len = l[d];
            // rem_euclid keeps the result in [0, len) even for far images.
            p[d] = (p[d] - self.lo[d]).rem_euclid(len) + self.lo[d];
            // Guard against the p == hi edge case from floating rounding.
            if p[d] >= self.hi[d] {
                p[d] = self.lo[d];
            }
        }
        p
    }

    /// Minimum-image displacement `a - b`.
    ///
    /// Precondition: both points lie within one box length of the primary
    /// image (always true for positions maintained by [`Self::wrap`] — the
    /// invariant every integrator step restores). Far-image inputs must be
    /// wrapped first.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let l = self.lengths();
        let mut d = a - b;
        for i in 0..3 {
            let len = l[i];
            if d[i] > 0.5 * len {
                d[i] -= len;
            } else if d[i] < -0.5 * len {
                d[i] += len;
            }
        }
        d
    }

    /// Minimum-image squared distance between two points.
    #[inline]
    pub fn dist2(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm2()
    }

    /// `true` if `p` lies inside the primary image.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        (0..3).all(|d| p[d] >= self.lo[d] && p[d] < self.hi[d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_brings_points_inside() {
        let b = SimBox::cubic(10.0);
        assert_eq!(b.wrap(Vec3::new(11.0, -1.0, 25.0)), Vec3::new(1.0, 9.0, 5.0));
        assert_eq!(b.wrap(Vec3::new(5.0, 0.0, 9.999)), Vec3::new(5.0, 0.0, 9.999));
        assert!(b.contains(b.wrap(Vec3::new(-123.4, 567.8, 0.0))));
    }

    #[test]
    fn wrap_handles_exact_boundary() {
        let b = SimBox::cubic(10.0);
        let w = b.wrap(Vec3::new(10.0, 20.0, -10.0));
        assert!(b.contains(w));
        assert_eq!(w, Vec3::ZERO);
    }

    #[test]
    fn min_image_shorter_than_half_box() {
        let b = SimBox::cubic(10.0);
        // Points near opposite faces are close through the boundary.
        let d = b.min_image(Vec3::new(0.5, 0.0, 0.0), Vec3::new(9.5, 0.0, 0.0));
        assert!((d.x - 1.0).abs() < 1e-12);
        assert!((b.dist2(Vec3::new(0.5, 0.0, 0.0), Vec3::new(9.5, 0.0, 0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let b = SimBox::new(8.0, 12.0, 20.0);
        let p = Vec3::new(7.5, 1.0, 19.0);
        let q = Vec3::new(0.5, 11.0, 0.5);
        let d1 = b.min_image(p, q);
        let d2 = b.min_image(q, p);
        assert!((d1 + d2).norm() < 1e-12);
    }

    #[test]
    fn volume_and_lengths() {
        let b = SimBox::new(2.0, 3.0, 4.0);
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.lengths(), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_edge_rejected() {
        let _ = SimBox::new(1.0, 0.0, 1.0);
    }
}
