//! Spatial domain decomposition onto ranks and nodes.
//!
//! LAMMPS decomposes the box into one sub-box per MPI rank. The paper runs
//! 4 ranks per Fugaku node (one per CMG/NUMA domain); we mirror that by
//! splitting every *node-box* 2×2×1 into four rank sub-boxes, which
//! reproduces the paper's neighbour counts exactly:
//!
//! | sub-box side (× r_c) | rank neighbours | node neighbours |
//! |----------------------|-----------------|-----------------|
//! | [1, 1, 1]            | 26              | 26              |
//! | [0.5, 0.5, 1]        | 74              | 26              |
//! | [0.5, 0.5, 0.5]      | 124             | 44              |
//!
//! (rank: `∏(2·ceil(r_c/edge_d)+1) − 1`; node: same formula on the node-box.)

use serde::{Deserialize, Serialize};

use crate::atoms::Atoms;
use crate::simbox::SimBox;
use crate::vec3::Vec3;

/// A domain decomposition: node grid `nodes`, rank grid `ranks = [2nx, 2ny, nz]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Decomposition {
    /// The global periodic box.
    pub bx: SimBox,
    /// Node grid dimensions.
    pub nodes: [usize; 3],
    /// Rank grid dimensions (x and y split in two per node).
    pub ranks: [usize; 3],
}

/// Ranks per node (one per CMG on the A64FX).
pub const RANKS_PER_NODE: usize = 4;
/// Compute threads per rank (12 cores per CMG).
pub const THREADS_PER_RANK: usize = 12;
/// Compute cores per node.
pub const CORES_PER_NODE: usize = RANKS_PER_NODE * THREADS_PER_RANK;

impl Decomposition {
    /// Decompose `bx` over an `nx × ny × nz` node grid.
    ///
    /// # Panics
    /// If any grid dimension is zero.
    pub fn new(bx: SimBox, nodes: [usize; 3]) -> Self {
        assert!(nodes.iter().all(|&n| n > 0), "node grid must be positive");
        Decomposition { bx, nodes, ranks: [2 * nodes[0], 2 * nodes[1], nodes[2]] }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().product()
    }

    /// Total rank count.
    pub fn num_ranks(&self) -> usize {
        self.ranks.iter().product()
    }

    /// Total compute cores.
    pub fn num_cores(&self) -> usize {
        self.num_nodes() * CORES_PER_NODE
    }

    /// Rank grid coordinates of rank `r` (x fastest).
    #[inline]
    pub fn rank_coords(&self, r: usize) -> [usize; 3] {
        let [rx, ry, _] = self.ranks;
        [r % rx, (r / rx) % ry, r / (rx * ry)]
    }

    /// Rank id at grid coordinates (periodic wrap).
    #[inline]
    pub fn rank_at(&self, c: [i64; 3]) -> usize {
        let [rx, ry, rz] = self.ranks;
        let x = c[0].rem_euclid(rx as i64) as usize;
        let y = c[1].rem_euclid(ry as i64) as usize;
        let z = c[2].rem_euclid(rz as i64) as usize;
        (z * ry + y) * rx + x
    }

    /// Node grid coordinates of node `n`.
    #[inline]
    pub fn node_coords(&self, n: usize) -> [usize; 3] {
        let [nx, ny, _] = self.nodes;
        [n % nx, (n / nx) % ny, n / (nx * ny)]
    }

    /// Node id at grid coordinates (periodic wrap).
    #[inline]
    pub fn node_at(&self, c: [i64; 3]) -> usize {
        let [nx, ny, nz] = self.nodes;
        let x = c[0].rem_euclid(nx as i64) as usize;
        let y = c[1].rem_euclid(ny as i64) as usize;
        let z = c[2].rem_euclid(nz as i64) as usize;
        (z * ny + y) * nx + x
    }

    /// Node owning rank `r`.
    #[inline]
    pub fn rank_to_node(&self, r: usize) -> usize {
        let [cx, cy, cz] = self.rank_coords(r);
        self.node_at([(cx / 2) as i64, (cy / 2) as i64, cz as i64])
    }

    /// Index of rank `r` within its node (0..4) — the CMG it binds to.
    #[inline]
    pub fn rank_slot(&self, r: usize) -> usize {
        let [cx, cy, _] = self.rank_coords(r);
        (cy % 2) * 2 + (cx % 2)
    }

    /// The four ranks of node `n`, ordered by slot.
    pub fn node_ranks(&self, n: usize) -> [usize; RANKS_PER_NODE] {
        let [nx, ny, nz] = self.node_coords(n);
        let _ = nz;
        let base = [2 * nx as i64, 2 * ny as i64, self.node_coords(n)[2] as i64];
        [
            self.rank_at(base),
            self.rank_at([base[0] + 1, base[1], base[2]]),
            self.rank_at([base[0], base[1] + 1, base[2]]),
            self.rank_at([base[0] + 1, base[1] + 1, base[2]]),
        ]
    }

    /// Edge lengths of one rank sub-box.
    pub fn rank_edges(&self) -> Vec3 {
        let l = self.bx.lengths();
        Vec3::new(l.x / self.ranks[0] as f64, l.y / self.ranks[1] as f64, l.z / self.ranks[2] as f64)
    }

    /// Edge lengths of one node-box.
    pub fn node_edges(&self) -> Vec3 {
        let l = self.bx.lengths();
        Vec3::new(l.x / self.nodes[0] as f64, l.y / self.nodes[1] as f64, l.z / self.nodes[2] as f64)
    }

    /// `[lo, hi)` bounds of rank `r`'s sub-box.
    pub fn rank_box(&self, r: usize) -> (Vec3, Vec3) {
        let e = self.rank_edges();
        let c = self.rank_coords(r);
        let lo = self.bx.lo + Vec3::new(c[0] as f64 * e.x, c[1] as f64 * e.y, c[2] as f64 * e.z);
        (lo, lo + e)
    }

    /// `[lo, hi)` bounds of node `n`'s node-box.
    pub fn node_box(&self, n: usize) -> (Vec3, Vec3) {
        let e = self.node_edges();
        let c = self.node_coords(n);
        let lo = self.bx.lo + Vec3::new(c[0] as f64 * e.x, c[1] as f64 * e.y, c[2] as f64 * e.z);
        (lo, lo + e)
    }

    /// Rank owning position `p` (after wrapping into the box).
    pub fn rank_of_pos(&self, p: Vec3) -> usize {
        let p = self.bx.wrap(p);
        let e = self.rank_edges();
        let mut c = [0i64; 3];
        for d in 0..3 {
            let f = ((p[d] - self.bx.lo[d]) / e[d]).floor() as i64;
            c[d] = f.min(self.ranks[d] as i64 - 1).max(0);
        }
        self.rank_at(c)
    }

    /// Node owning position `p`.
    pub fn node_of_pos(&self, p: Vec3) -> usize {
        self.rank_to_node(self.rank_of_pos(p))
    }

    /// Owner rank of every local atom.
    pub fn assign_ranks(&self, atoms: &Atoms) -> Vec<u32> {
        atoms.pos[..atoms.nlocal].iter().map(|&p| self.rank_of_pos(p) as u32).collect()
    }

    /// Histogram of local atoms per rank.
    pub fn counts_per_rank(&self, atoms: &Atoms) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_ranks()];
        for &p in &atoms.pos[..atoms.nlocal] {
            counts[self.rank_of_pos(p)] += 1;
        }
        counts
    }

    /// Histogram of local atoms per node.
    pub fn counts_per_node(&self, atoms: &Atoms) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_nodes()];
        for &p in &atoms.pos[..atoms.nlocal] {
            counts[self.node_of_pos(p)] += 1;
        }
        counts
    }

    /// Ghost-communication layers per direction for a box with `edges`:
    /// `ceil(r_c / edge_d)`, the number of sub-box shells the halo crosses.
    pub fn comm_layers(edges: Vec3, rc: f64) -> [usize; 3] {
        let mut l = [0usize; 3];
        for d in 0..3 {
            l[d] = (rc / edges[d]).ceil().max(1.0) as usize;
        }
        l
    }

    /// Neighbour ranks of `r` within cutoff `rc` (periodic, deduplicated,
    /// excluding `r` itself) — the peers of the p2p pattern.
    pub fn neighbor_ranks(&self, r: usize, rc: f64) -> Vec<usize> {
        let layers = Self::comm_layers(self.rank_edges(), rc);
        let c = self.rank_coords(r);
        self.enumerate_neighbors(
            [c[0] as i64, c[1] as i64, c[2] as i64],
            layers,
            self.ranks,
            |cc| self.rank_at(cc),
            r,
        )
    }

    /// Neighbour nodes of `n` within cutoff `rc` — the peers of the
    /// node-based scheme.
    pub fn neighbor_nodes(&self, n: usize, rc: f64) -> Vec<usize> {
        let layers = Self::comm_layers(self.node_edges(), rc);
        let c = self.node_coords(n);
        self.enumerate_neighbors(
            [c[0] as i64, c[1] as i64, c[2] as i64],
            layers,
            self.nodes,
            |cc| self.node_at(cc),
            n,
        )
    }

    fn enumerate_neighbors(
        &self,
        center: [i64; 3],
        layers: [usize; 3],
        grid: [usize; 3],
        id_of: impl Fn([i64; 3]) -> usize,
        exclude: usize,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        for dx in -(layers[0] as i64)..=(layers[0] as i64) {
            for dy in -(layers[1] as i64)..=(layers[1] as i64) {
                for dz in -(layers[2] as i64)..=(layers[2] as i64) {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let id = id_of([center[0] + dx, center[1] + dy, center[2] + dz]);
                    if id != exclude {
                        out.push(id);
                    }
                }
            }
        }
        // Small grids alias under periodic wrap; keep each peer once.
        out.sort_unstable();
        out.dedup();
        let _ = grid;
        out
    }

    /// `true` if position `p` lies within `rc` of rank `r`'s sub-box
    /// (periodic) — i.e. `p` belongs in `r`'s ghost region.
    pub fn in_ghost_region_of_rank(&self, r: usize, p: Vec3, rc: f64) -> bool {
        let (lo, hi) = self.rank_box(r);
        self.point_near_box(p, lo, hi, rc)
    }

    /// `true` if position `p` lies within `rc` of node `n`'s node-box.
    pub fn in_ghost_region_of_node(&self, n: usize, p: Vec3, rc: f64) -> bool {
        let (lo, hi) = self.node_box(n);
        self.point_near_box(p, lo, hi, rc)
    }

    fn point_near_box(&self, p: Vec3, lo: Vec3, hi: Vec3, rc: f64) -> bool {
        let l = self.bx.lengths();
        let mut d2 = 0.0;
        for d in 0..3 {
            // Periodic distance from p to the interval [lo, hi) along axis d.
            let len = l[d];
            let mut dist = f64::MAX;
            for shift in [-len, 0.0, len] {
                let x = p[d] + shift;
                let dd = if x < lo[d] {
                    lo[d] - x
                } else if x > hi[d] {
                    x - hi[d]
                } else {
                    0.0
                };
                dist = dist.min(dd);
            }
            d2 += dist * dist;
        }
        d2 <= rc * rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::fcc_copper;

    fn decomp_96() -> Decomposition {
        // The paper's 96-node topology 4×6×4 over an arbitrary box.
        Decomposition::new(SimBox::new(64.0, 96.0, 64.0), [4, 6, 4])
    }

    #[test]
    fn grid_sizes() {
        let d = decomp_96();
        assert_eq!(d.num_nodes(), 96);
        assert_eq!(d.num_ranks(), 384);
        assert_eq!(d.num_cores(), 96 * 48);
    }

    #[test]
    fn rank_node_round_trip() {
        let d = decomp_96();
        for r in 0..d.num_ranks() {
            let n = d.rank_to_node(r);
            assert!(d.node_ranks(n).contains(&r), "rank {r} missing from node {n}");
            assert!(d.rank_slot(r) < RANKS_PER_NODE);
        }
        // Each node has exactly 4 distinct ranks.
        for n in 0..d.num_nodes() {
            let rs = d.node_ranks(n);
            let mut sorted = rs;
            sorted.sort_unstable();
            sorted.windows(2).for_each(|w| assert_ne!(w[0], w[1]));
            for r in rs {
                assert_eq!(d.rank_to_node(r), n);
            }
        }
    }

    #[test]
    fn paper_neighbor_counts_table() {
        // Construct boxes so the rank sub-box edge hits the three paper
        // configurations exactly, with rc = 8 Å.
        let rc = 8.0;
        // [1,1,1]·rc sub-box: rank edge = 8 ⇒ box = (2·4·8, 2·6·8, 4·8).
        let d1 = Decomposition::new(SimBox::new(64.0, 96.0, 32.0), [4, 6, 4]);
        assert_eq!(d1.neighbor_ranks(0, rc).len(), 26);
        assert_eq!(d1.neighbor_nodes(0, rc).len(), 26);
        // [0.5,0.5,1]·rc: rank edge = (4,4,8) ⇒ box = (32,48,32).
        let d2 = Decomposition::new(SimBox::new(32.0, 48.0, 32.0), [4, 6, 4]);
        assert_eq!(d2.neighbor_ranks(0, rc).len(), 74);
        assert_eq!(d2.neighbor_nodes(0, rc).len(), 26);
        // [0.5,0.5,0.5]·rc: rank edge = (4,4,4) ⇒ box = (32,48,32) over a
        // 4×6×8 node grid (z deep enough that the ±2-layer halo does not
        // alias around the torus).
        let d3 = Decomposition::new(SimBox::new(32.0, 48.0, 32.0), [4, 6, 8]);
        assert_eq!(d3.neighbor_ranks(0, rc).len(), 124);
        assert_eq!(d3.neighbor_nodes(0, rc).len(), 44);
    }

    #[test]
    fn every_atom_lands_in_its_rank_box() {
        let (bx, atoms) = fcc_copper(8, 8, 8);
        let d = Decomposition::new(bx, [2, 2, 2]);
        for i in 0..atoms.nlocal {
            let r = d.rank_of_pos(atoms.pos[i]);
            let (lo, hi) = d.rank_box(r);
            for k in 0..3 {
                assert!(atoms.pos[i][k] >= lo[k] - 1e-12 && atoms.pos[i][k] < hi[k] + 1e-12);
            }
        }
        // Counts add up.
        let counts = d.counts_per_rank(&atoms);
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), atoms.nlocal);
        let ncounts = d.counts_per_node(&atoms);
        assert_eq!(ncounts.iter().map(|&c| c as usize).sum::<usize>(), atoms.nlocal);
    }

    #[test]
    fn node_counts_are_sums_of_rank_counts() {
        let (bx, atoms) = fcc_copper(6, 6, 6);
        let d = Decomposition::new(bx, [3, 3, 3]);
        let rc_counts = d.counts_per_rank(&atoms);
        let node_counts = d.counts_per_node(&atoms);
        for (n, &count) in node_counts.iter().enumerate() {
            let sum: u32 = d.node_ranks(n).iter().map(|&r| rc_counts[r]).sum();
            assert_eq!(sum, count, "node {n}");
        }
    }

    #[test]
    fn ghost_region_membership() {
        let d = Decomposition::new(SimBox::cubic(40.0), [2, 2, 2]);
        // Rank 0 owns [0,10)×[0,10)×[0,20).
        let (lo, hi) = d.rank_box(0);
        assert_eq!(lo, Vec3::ZERO);
        assert_eq!(hi, Vec3::new(10.0, 10.0, 20.0));
        // A point just outside +x face is in rank 0's ghost region at rc=2.
        assert!(d.in_ghost_region_of_rank(0, Vec3::new(11.0, 5.0, 5.0), 2.0));
        assert!(!d.in_ghost_region_of_rank(0, Vec3::new(13.0, 5.0, 5.0), 2.0));
        // Periodic: a point near the far x face wraps around.
        assert!(d.in_ghost_region_of_rank(0, Vec3::new(39.0, 5.0, 5.0), 2.0));
        // Inside the box counts as distance zero.
        assert!(d.in_ghost_region_of_rank(0, Vec3::new(5.0, 5.0, 5.0), 2.0));
    }

    #[test]
    fn comm_layer_formula() {
        assert_eq!(Decomposition::comm_layers(Vec3::new(8.0, 8.0, 8.0), 8.0), [1, 1, 1]);
        assert_eq!(Decomposition::comm_layers(Vec3::new(4.0, 4.0, 8.0), 8.0), [2, 2, 1]);
        assert_eq!(Decomposition::comm_layers(Vec3::new(4.0, 4.0, 4.0), 8.0), [2, 2, 2]);
        assert_eq!(Decomposition::comm_layers(Vec3::new(3.0, 8.0, 8.0), 8.0), [3, 1, 1]);
    }
}
