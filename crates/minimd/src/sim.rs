//! Single-process simulation driver.
//!
//! Glues neighbour-list maintenance (the paper's rebuild-every-50-steps
//! policy plus the drift safety check), the velocity-Verlet integrator, and
//! a force field into a run loop with thermodynamic output. This is the
//! functional MD path used by the accuracy experiments (Table II, Fig. 6)
//! and by training-data generation; the at-scale distributed behaviour is
//! modelled by the `comm`/`scaling` crates.

use std::time::{Duration, Instant};

use dpmd_obs::clock::wall_now;

use dpmd_obs::steps::{StepPhases, StepSeries};
use dpmd_obs::{Counter, MetricsRegistry, TraceBuffer, Unit};

use crate::atoms::Atoms;
use crate::compute::pressure_bar;
use crate::integrate::{current_temperature, kinetic_energy, VelocityVerlet};
use crate::neighbor::{ListKind, NeighborList};
use crate::potential::{ForcePhases, Potential, PotentialOutput};
use crate::simbox::SimBox;

/// Thermodynamic snapshot after a step.
#[derive(Clone, Copy, Debug, Default)]
pub struct Thermo {
    /// Step index.
    pub step: u64,
    /// Potential energy, eV.
    pub pe: f64,
    /// Kinetic energy, eV.
    pub ke: f64,
    /// Total energy, eV.
    pub etotal: f64,
    /// Instantaneous temperature, K.
    pub temperature: f64,
    /// Virial pressure, bar.
    pub pressure: f64,
}

/// Wall-clock breakdown of one simulation step, from monotonic
/// ([`Instant`]) timers around each phase of [`Simulation::step`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StepTiming {
    /// Step index this timing belongs to.
    pub step: u64,
    /// Neighbour-list rebuild (zero on steps that reuse the list), s.
    pub neighbor_s: f64,
    /// Whole force evaluation (descriptor + embedding + fitting for DP), s.
    pub force_s: f64,
    /// Sub-phases of the force evaluation, when the potential reports them.
    pub phases: ForcePhases,
    /// Both velocity-Verlet half-kicks plus the drift/position update, s.
    pub integrate_s: f64,
    /// Full step wall time, s.
    pub total_s: f64,
}

impl StepTiming {
    /// Sum of the attributed phases (neighbor + force + integrate), s.
    /// Compare against [`total_s`](Self::total_s) to see unattributed time
    /// (thermo bookkeeping, rebuild checks).
    pub fn phase_sum_s(&self) -> f64 {
        self.neighbor_s + self.force_s + self.integrate_s
    }
}

/// Opaque token for a step whose first Verlet half-kick has run but whose
/// force evaluation and closing kick have not. Produced by
/// [`Simulation::begin_step`], consumed by [`Simulation::complete_step`];
/// carries the in-progress phase record and the step's start instant.
pub struct StepInFlight {
    rec: StepPhases,
    t_step: Instant,
}

/// Metric and trace handles attached by [`Simulation::attach_obs`].
struct SimObs {
    /// `minimd.steps` — completed steps.
    steps: Counter,
    /// `minimd.neighbor.rebuilds` — neighbour-list rebuilds (cadence or
    /// drift triggered).
    rebuilds: Counter,
    /// `minimd.wall.*_ns` — cumulative wall time per phase (non-
    /// deterministic, excluded from golden snapshots).
    wall_neighbor: Counter,
    wall_force: Counter,
    wall_integrate: Counter,
    wall_total: Counter,
    /// Per-step span tree destination.
    trace: TraceBuffer,
}

/// A complete single-box simulation.
pub struct Simulation {
    /// Periodic box.
    pub bx: SimBox,
    /// Atom storage.
    pub atoms: Atoms,
    /// Force field.
    pub potential: Box<dyn Potential>,
    /// Integrator (time-step + thermostat).
    pub integrator: VelocityVerlet,
    /// Verlet list.
    pub nl: NeighborList,
    /// Rebuild cadence in steps (the paper rebuilds every 50).
    pub rebuild_every: u64,
    step: u64,
    last: Thermo,
    /// Virial of the last force evaluation, kept so KE-dependent outputs
    /// (pressure included) can be refreshed after the final Verlet kick.
    last_virial: f64,
    /// Per-step phase record; [`timing`](Self::timing) is a view over its
    /// latest entry.
    series: StepSeries,
    /// Metric handles; `None` (the default) skips all recording.
    obs: Option<SimObs>,
}

impl Simulation {
    /// Assemble a simulation; builds the initial neighbour list and computes
    /// initial forces so the first Verlet kick is correct.
    pub fn new(
        bx: SimBox,
        atoms: Atoms,
        potential: Box<dyn Potential>,
        integrator: VelocityVerlet,
        skin: f64,
        rebuild_every: u64,
    ) -> Self {
        let nl = NeighborList::new(potential.cutoff(), skin, ListKind::Full);
        let mut sim = Simulation {
            bx,
            atoms,
            potential,
            integrator,
            nl,
            rebuild_every,
            step: 0,
            last: Thermo::default(),
            last_virial: 0.0,
            series: StepSeries::new(),
            obs: None,
        };
        sim.nl.build(&sim.atoms, &sim.bx);
        sim.recompute_forces();
        sim
    }

    /// Assemble a simulation **without** evaluating initial forces: the
    /// neighbour list is built and `atoms.force` is zeroed, but the caller
    /// must evaluate forces for the initial positions (however it likes —
    /// the continuous batch scheduler fuses the initial evaluations of
    /// every tenant attaching in the same round) and hand the result to
    /// [`initialize_forces`](Self::initialize_forces) before the first
    /// step.
    pub fn new_deferred(
        bx: SimBox,
        atoms: Atoms,
        potential: Box<dyn Potential>,
        integrator: VelocityVerlet,
        skin: f64,
        rebuild_every: u64,
    ) -> Self {
        let nl = NeighborList::new(potential.cutoff(), skin, ListKind::Full);
        let mut sim = Simulation {
            bx,
            atoms,
            potential,
            integrator,
            nl,
            rebuild_every,
            step: 0,
            last: Thermo::default(),
            last_virial: 0.0,
            series: StepSeries::new(),
            obs: None,
        };
        sim.nl.build(&sim.atoms, &sim.bx);
        sim.atoms.zero_forces();
        sim
    }

    /// Complete a [`new_deferred`](Self::new_deferred) construction:
    /// forces for the current positions are already in `atoms.force`
    /// (e.g. restored from a fused batched evaluation) and `out` carries
    /// their energy and virial. Records the step-0 thermo exactly as
    /// [`new`](Self::new) does, so a bit-identical evaluation yields a
    /// bit-identical simulation.
    pub fn initialize_forces(&mut self, out: PotentialOutput) {
        self.finish_force_update(out);
    }

    /// Current step index.
    pub fn step_index(&self) -> u64 {
        self.step
    }

    /// Thermodynamics of the last completed step.
    pub fn thermo(&self) -> Thermo {
        self.last
    }

    /// Wall-clock breakdown of the last completed step (zeros before the
    /// first [`step`](Self::step) call) — a view over the latest
    /// [`step_series`](Self::step_series) entry.
    pub fn timing(&self) -> StepTiming {
        match self.series.last() {
            None => StepTiming::default(),
            Some(p) => StepTiming {
                step: p.step,
                neighbor_s: p.neighbor_s,
                force_s: p.force_s,
                phases: ForcePhases {
                    descriptor_s: p.descriptor_s,
                    embedding_s: p.embedding_s,
                    fitting_s: p.fitting_s,
                    reduction_s: p.reduction_s,
                },
                integrate_s: p.integrate_s,
                total_s: p.total_s,
            },
        }
    }

    /// Full per-step phase record of the run so far.
    pub fn step_series(&self) -> &StepSeries {
        &self.series
    }

    /// Register this simulation's metrics on `reg` and mirror per-step
    /// span trees into `trace`. Step/rebuild counts are deterministic;
    /// the cumulative `minimd.wall.*_ns` counters carry [`Unit::WallNs`]
    /// and are excluded from deterministic snapshots.
    pub fn attach_obs(&mut self, reg: &MetricsRegistry, trace: &TraceBuffer) {
        self.obs = Some(SimObs {
            steps: reg.counter("minimd.steps", Unit::Count),
            rebuilds: reg.counter("minimd.neighbor.rebuilds", Unit::Count),
            wall_neighbor: reg.counter("minimd.wall.neighbor_ns", Unit::WallNs),
            wall_force: reg.counter("minimd.wall.force_ns", Unit::WallNs),
            wall_integrate: reg.counter("minimd.wall.integrate_ns", Unit::WallNs),
            wall_total: reg.counter("minimd.wall.total_ns", Unit::WallNs),
            trace: trace.clone(),
        });
    }

    fn recompute_forces(&mut self) -> f64 {
        self.atoms.zero_forces();
        let out = self.potential.compute(&mut self.atoms, &self.nl, &self.bx);
        let energy = out.energy;
        self.finish_force_update(out);
        energy
    }

    /// Record the thermo state implied by freshly evaluated forces (already
    /// in `atoms.force`) whose energy/virial are in `out`.
    fn finish_force_update(&mut self, out: PotentialOutput) {
        let ke = kinetic_energy(&self.atoms);
        self.last = Thermo {
            step: self.step,
            pe: out.energy,
            ke,
            etotal: out.energy + ke,
            temperature: current_temperature(&self.atoms),
            pressure: pressure_bar(&self.atoms, &self.bx, ke, out.virial),
        };
        self.last_virial = out.virial;
    }

    /// Advance one velocity-Verlet step.
    pub fn step(&mut self) -> Thermo {
        let tok = self.begin_step();
        self.atoms.zero_forces();
        let t_force = wall_now();
        let out = self.potential.compute(&mut self.atoms, &self.nl, &self.bx);
        let t_force_end = wall_now();
        let phases = self.potential.phase_times().unwrap_or_default();
        self.complete_step(out, phases, (t_force, t_force_end), tok)
    }

    /// First half of a step: the opening Verlet kick plus the neighbour-list
    /// cadence/drift check and rebuild. After this the caller must evaluate
    /// forces into zeroed `atoms.force` (however it likes — the batch
    /// scheduler fuses many replicas' evaluations here) and hand the result
    /// to [`complete_step`](Self::complete_step). [`step`](Self::step) is
    /// exactly `begin_step` + a solo `potential.compute` + `complete_step`.
    pub fn begin_step(&mut self) -> StepInFlight {
        let t_step = wall_now();
        let mut rec = StepPhases::default();

        let t0 = wall_now();
        self.integrator.first_half(&mut self.atoms, &self.bx);
        let t1 = wall_now();
        rec.integrate_s += (t1 - t0).as_secs_f64();
        if let Some(o) = &self.obs {
            o.trace.push_complete("integrate.first", t0, t1);
        }

        let cadence_hit = self.rebuild_every > 0 && (self.step + 1).is_multiple_of(self.rebuild_every);
        if cadence_hit || self.nl.needs_rebuild(&self.atoms, &self.bx) {
            let t0 = wall_now();
            self.nl.build(&self.atoms, &self.bx);
            let t1 = wall_now();
            rec.neighbor_s = (t1 - t0).as_secs_f64();
            if let Some(o) = &self.obs {
                o.rebuilds.inc();
                o.trace.push_complete("neighbor.rebuild", t0, t1);
            }
        }

        StepInFlight { rec, t_step }
    }

    /// Second half of a step: record the externally-run force evaluation
    /// (`out`, its sub-`phases` and wall-clock `force_span`), apply the
    /// closing Verlet kick, and refresh the thermodynamic snapshot. The
    /// resulting state is field-for-field identical to a solo
    /// [`step`](Self::step) producing the same `out`.
    pub fn complete_step(
        &mut self,
        out: PotentialOutput,
        phases: ForcePhases,
        force_span: (Instant, Instant),
        tok: StepInFlight,
    ) -> Thermo {
        let StepInFlight { mut rec, t_step } = tok;
        let (t_force, t_force_end) = force_span;
        rec.force_s = (t_force_end - t_force).as_secs_f64();
        rec.descriptor_s = phases.descriptor_s;
        rec.embedding_s = phases.embedding_s;
        rec.fitting_s = phases.fitting_s;
        rec.reduction_s = phases.reduction_s;
        self.last.pe = out.energy;
        self.last_virial = out.virial;
        if let Some(o) = &self.obs {
            o.trace.push_complete("force", t_force, t_force_end);
            // The force sub-phases are sequential barrier-separated passes;
            // lay them out back-to-back from the force start. Their sum can
            // undershoot `force_s` (scheduling overhead) but clamping keeps
            // them inside the parent span even under f64 rounding.
            let mut cursor = t_force;
            for (name, secs) in [
                ("force.descriptor", phases.descriptor_s),
                ("force.embedding", phases.embedding_s),
                ("force.fitting", phases.fitting_s),
                ("force.reduction", phases.reduction_s),
            ] {
                if secs > 0.0 {
                    let end = (cursor + Duration::from_secs_f64(secs)).min(t_force_end);
                    o.trace.push_complete(name, cursor, end);
                    cursor = end;
                }
            }
        }

        let t0 = wall_now();
        self.integrator.second_half(&mut self.atoms);
        let t1 = wall_now();
        rec.integrate_s += (t1 - t0).as_secs_f64();
        if let Some(o) = &self.obs {
            o.trace.push_complete("integrate.second", t0, t1);
        }

        // Refresh KE-dependent outputs after the final kick. The pressure's
        // kinetic term changes with the kick too: recompute it from the
        // stored virial so the snapshot is self-consistent (pe, ke, T and P
        // all describe the post-kick state).
        let ke = kinetic_energy(&self.atoms);
        self.last.ke = ke;
        self.last.etotal = self.last.pe + ke;
        self.last.temperature = current_temperature(&self.atoms);
        self.last.pressure = pressure_bar(&self.atoms, &self.bx, ke, self.last_virial);
        self.step += 1;
        self.last.step = self.step;
        rec.step = self.step;
        let t_end = wall_now();
        rec.total_s = (t_end - t_step).as_secs_f64();
        if let Some(o) = &self.obs {
            o.trace.push_complete("step", t_step, t_end);
            o.steps.inc();
            o.wall_neighbor.add((rec.neighbor_s * 1e9) as u64);
            o.wall_force.add((rec.force_s * 1e9) as u64);
            o.wall_integrate.add((rec.integrate_s * 1e9) as u64);
            o.wall_total.add((rec.total_s * 1e9) as u64);
        }
        self.series.push(rec);
        self.last
    }

    /// Run `n` steps, returning the thermo trace (one entry per step).
    pub fn run(&mut self, n: u64) -> Vec<Thermo> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::init_velocities;
    use crate::lattice::{fcc_copper, water_box};
    use crate::potential::eam::SuttonChen;
    use crate::potential::lj::LennardJones;
    use crate::potential::water::WaterSurrogate;
    use crate::units::FEMTOSECOND;

    /// NVE energy conservation with Lennard-Jones — the classic integrator
    /// correctness test.
    #[test]
    fn lj_nve_conserves_energy() {
        let (bx, mut atoms) = crate::lattice::fcc_lattice(4, 4, 4, 5.3);
        init_velocities(&mut atoms, 30.0, 1);
        let lj = LennardJones::argon_like();
        let mut sim =
            Simulation::new(bx, atoms, Box::new(lj), VelocityVerlet::new(2.0 * FEMTOSECOND), 1.0, 50);
        let e0 = sim.thermo().etotal;
        let trace = sim.run(300);
        let e1 = trace.last().unwrap().etotal;
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 1e-4, "relative energy drift {drift}");
    }

    #[test]
    fn copper_nve_conserves_energy() {
        let (bx, mut atoms) = fcc_copper(5, 5, 5);
        init_velocities(&mut atoms, 300.0, 2);
        let sc = SuttonChen::copper(6.5);
        let mut sim = Simulation::new(bx, atoms, Box::new(sc), VelocityVerlet::new(FEMTOSECOND), 1.0, 50);
        let e0 = sim.thermo().etotal;
        let trace = sim.run(200);
        let e1 = trace.last().unwrap().etotal;
        assert!(((e1 - e0) / e0).abs() < 5e-5, "drift {}", ((e1 - e0) / e0).abs());
    }

    #[test]
    fn water_nve_conserves_energy_with_half_fs_step() {
        use crate::integrate::Thermostat;
        let (bx, mut atoms) = water_box(5, 5, 5, 5);
        init_velocities(&mut atoms, 300.0, 3);
        let w = WaterSurrogate::standard(6.0);
        // Equilibrate the lattice-built box first so the NVE segment starts
        // from a relaxed configuration (the paper's production runs do the
        // same; a fresh lattice releases potential energy violently).
        let mut eq = VelocityVerlet::new(0.5 * FEMTOSECOND);
        eq.thermostat = Thermostat::Rescale { t_target: 300.0 };
        let mut sim = Simulation::new(bx, atoms, Box::new(w), eq, 1.0, 50);
        sim.run(200);
        // The paper integrates water at 0.5 fs (stiff O–H bonds).
        sim.integrator.thermostat = Thermostat::None;
        let e0 = sim.step().etotal;
        let trace = sim.run(200);
        let e1 = trace.last().unwrap().etotal;
        let scale = sim.atoms.nlocal as f64; // per-atom drift
        let drift = ((e1 - e0) / scale).abs();
        assert!(drift < 2e-4, "per-atom drift {drift}");
    }

    #[test]
    fn thermo_snapshot_is_self_consistent_after_kick() {
        // Regression: the post-kick refresh used to update ke/etotal/T but
        // leave `pressure` carrying the pre-kick kinetic term. Every field
        // of the snapshot must describe the same (post-kick) state.
        let (bx, mut atoms) = crate::lattice::fcc_lattice(4, 4, 4, 5.3);
        init_velocities(&mut atoms, 120.0, 9);
        let lj = LennardJones::argon_like();
        let mut sim =
            Simulation::new(bx, atoms, Box::new(lj), VelocityVerlet::new(2.0 * FEMTOSECOND), 1.0, 50);
        for _ in 0..5 {
            let th = sim.step();
            let ke = kinetic_energy(&sim.atoms);
            assert_eq!(th.ke, ke);
            assert_eq!(th.etotal, th.pe + ke);
            assert_eq!(
                th.pressure,
                pressure_bar(&sim.atoms, &sim.bx, ke, sim.last_virial),
                "pressure must use the refreshed kinetic energy"
            );
        }
    }

    #[test]
    fn step_timing_is_recorded_and_phases_fit_in_total() {
        let (bx, mut atoms) = fcc_copper(4, 4, 4);
        init_velocities(&mut atoms, 100.0, 11);
        let sc = SuttonChen::copper(6.5);
        let mut sim = Simulation::new(bx, atoms, Box::new(sc), VelocityVerlet::new(FEMTOSECOND), 2.0, 50);
        assert_eq!(sim.timing().total_s, 0.0, "no timing before the first step");
        sim.step();
        let t = sim.timing();
        assert_eq!(t.step, 1);
        assert!(t.total_s > 0.0);
        assert!(t.force_s > 0.0, "force evaluation must be timed");
        assert!(t.phase_sum_s() <= t.total_s, "{} vs {}", t.phase_sum_s(), t.total_s);
        // Analytic potentials report no sub-phases.
        assert_eq!(t.phases, crate::potential::ForcePhases::default());
    }

    #[test]
    fn attach_obs_records_steps_and_a_well_nested_span_tree() {
        let (bx, mut atoms) = crate::lattice::fcc_lattice(3, 3, 3, 5.3);
        init_velocities(&mut atoms, 30.0, 1);
        let lj = LennardJones::argon_like();
        let mut sim =
            Simulation::new(bx, atoms, Box::new(lj), VelocityVerlet::new(2.0 * FEMTOSECOND), 1.0, 50);
        let reg = MetricsRegistry::new();
        let trace = TraceBuffer::new();
        sim.attach_obs(&reg, &trace);
        sim.run(3);
        // The series records regardless of the capture feature.
        assert_eq!(sim.step_series().len(), 3);
        assert_eq!(sim.timing().step, 3);
        assert!(sim.step_series().totals().force_s > 0.0);
        if !reg.is_enabled() {
            return;
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("minimd.steps"), Some(3));
        let events = trace.events();
        assert_eq!(events.iter().filter(|e| e.name == "step").count(), 3);
        dpmd_obs::trace::validate_well_nested(&events).unwrap();
    }

    #[test]
    fn rebuild_cadence_is_respected() {
        let (bx, mut atoms) = fcc_copper(5, 5, 5);
        init_velocities(&mut atoms, 50.0, 4);
        let sc = SuttonChen::copper(6.5);
        let mut sim = Simulation::new(bx, atoms, Box::new(sc), VelocityVerlet::new(FEMTOSECOND), 2.0, 50);
        let builds0 = sim.nl.builds;
        sim.run(100);
        // Exactly two cadence rebuilds at steps 50 and 100 (cold atoms don't
        // drift past skin/2 in 100 fs).
        assert_eq!(sim.nl.builds - builds0, 2, "builds: {}", sim.nl.builds - builds0);
    }

    #[test]
    fn thermostat_equilibrates_water() {
        use crate::integrate::Thermostat;
        let (bx, mut atoms) = water_box(5, 5, 5, 6);
        init_velocities(&mut atoms, 300.0, 7);
        let w = WaterSurrogate::standard(6.0);
        let mut vv = VelocityVerlet::new(0.5 * FEMTOSECOND);
        vv.thermostat = Thermostat::Berendsen { t_target: 300.0, tau_ps: 0.01 };
        let mut sim = Simulation::new(bx, atoms, Box::new(w), vv, 1.0, 50);
        let trace = sim.run(600);
        let t_final = trace.last().unwrap().temperature;
        assert!((t_final - 300.0).abs() < 80.0, "T = {t_final}");
    }
}
