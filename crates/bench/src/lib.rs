//! # dpmd-bench — the benchmark harness
//!
//! One Criterion bench per table and figure of the paper (`cargo bench`),
//! each of which *prints the regenerated rows/series* before timing the
//! computation that produces them, plus micro-benchmarks of the kernels
//! whose measured ratios ground the performance model (sve-gemm vs naive
//! vs blocked, NN vs NT, f64/f32/f16).

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

/// Print a banner + rendered table once per bench binary.
pub fn banner(name: &str, rendered: &str) {
    println!("\n################ {name} ################");
    println!("{rendered}");
}
