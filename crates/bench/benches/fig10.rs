//! Regenerates Fig. 10: per-rank pair-time distributions, lb vs nolb.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::fig10;

fn bench(c: &mut Criterion) {
    let series = fig10::run(2024);
    dpmd_bench::banner("Fig. 10", &fig10::table(&series).render());
    for s in &series {
        println!(
            "{}{}: SDMR {:.2}%",
            if s.lb { "lb-" } else { "nolb-" },
            s.atoms_per_core,
            s.sdmr
        );
    }

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("distribution_sweep", |b| b.iter(|| fig10::run(7)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
