//! Dispatch-class GEMM microkernel bench (the tentpole acceptance bench for
//! the explicit-SIMD kernels): GF/s per precision × shape class for the
//! cache-blocked baseline, the portable scalar dispatch rule, and the
//! machine's native kernel (`dpmd-simd`, AVX2/NEON).
//!
//! Shape classes mirror the engine's real GEMM population: the paper's
//! dedicated tall-skinny fitting-net calls (M ∈ {1, 2, 3} against 240-wide
//! layers), the type-sorted stacked embedding panels (many rows, narrow K),
//! and a square-ish panel as the blocked kernel's home turf.
//!
//! Emits `BENCH_gemm.json` at the repo root. The acceptance records require
//! the native kernel to beat the blocked baseline by the committed margin on
//! the tall-skinny f32 classes — but only when a native class exists: on a
//! scalar-only host (or under `DPMD_FORCE_SCALAR=1`) the gate is recorded as
//! not applicable and CI skips it.

use std::time::Instant;

use nnet::gemm::dispatch;
use nnet::gemm::{blocked, naive};
use serde::Value;

fn num<T: std::fmt::Display>(v: T) -> Value {
    Value::Number(v.to_string())
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Interleaved best-of reps; within a rep the kernel runs `iters` times.
const REPS: usize = 7;

type GemmF32<'a> = &'a mut dyn FnMut(&[f32], &[f32], &mut [f32]);
type GemmF64<'a> = &'a mut dyn FnMut(&[f64], &[f64], &mut [f64]);

struct Shape {
    class: &'static str,
    m: usize,
    n: usize,
    k: usize,
    iters: usize,
}

const SHAPES: [Shape; 5] = [
    // Fitting-net forward/backward rows (the paper's M ≤ 3 specialization).
    Shape { class: "tall_skinny_m1", m: 1, n: 240, k: 240, iters: 4000 },
    Shape { class: "tall_skinny_m2", m: 2, n: 240, k: 240, iters: 2000 },
    Shape { class: "tall_skinny_m3", m: 3, n: 240, k: 240, iters: 1500 },
    // Type-sorted stacked embedding panel: many rows, narrow widths.
    Shape { class: "embed_stack", m: 64, n: 8, k: 5, iters: 20000 },
    // Square-ish panel, the blocked kernel's design point.
    Shape { class: "panel", m: 64, n: 240, k: 240, iters: 80 },
];

fn fill32(len: usize, seed: u64) -> Vec<f32> {
    let h = |i: u64| (((i ^ seed).wrapping_mul(0x9e3779b97f4a7c15) >> 17) & 0xffff) as f32 / 65536.0 - 0.5;
    (0..len as u64).map(h).collect()
}

/// Best GF/s over REPS interleaved repetitions of `iters` calls.
fn rate_f32(sh: &Shape, a: &[f32], b: &[f32], f: GemmF32) -> f64 {
    let mut c = vec![0.0f32; sh.m * sh.n];
    let flops = (2 * sh.m * sh.n * sh.k * sh.iters) as f64;
    let mut best = f64::MAX;
    f(a, b, &mut c); // warm
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..sh.iters {
            f(a, b, &mut c);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&c);
    flops / best / 1e9
}

fn rate_f64(sh: &Shape, a: &[f64], b: &[f64], f: GemmF64) -> f64 {
    let mut c = vec![0.0f64; sh.m * sh.n];
    let flops = (2 * sh.m * sh.n * sh.k * sh.iters) as f64;
    let mut best = f64::MAX;
    f(a, b, &mut c);
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..sh.iters {
            f(a, b, &mut c);
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    std::hint::black_box(&c);
    flops / best / 1e9
}

fn main() {
    let native = dispatch::native();
    let native_tag = native.map(|k| k.class().tag()).unwrap_or("none");
    let scalar = dispatch::scalar();

    let mut entries = Vec::new();
    for sh in &SHAPES {
        let (m, n, k) = (sh.m, sh.n, sh.k);
        let a32 = fill32(m * k, 1);
        let b32 = fill32(k * n, 2);
        let a64: Vec<f64> = a32.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b32.iter().map(|&x| x as f64).collect();

        // Correctness pin before timing: whatever we are about to measure
        // agrees with naive within fold-reassociation tolerance.
        {
            let mut want = vec![0.0f32; m * n];
            naive::gemm_nn_f32(m, n, k, &a32, &b32, &mut want);
            for kern in [Some(scalar), native].into_iter().flatten() {
                let mut got = vec![0.0f32; m * n];
                kern.nn_f32(m, n, k, &a32, &b32, &mut got);
                for (w, g) in want.iter().zip(&got) {
                    assert!((w - g).abs() <= 1e-4 * w.abs().max(1.0), "{} wrong", sh.class);
                }
            }
        }

        let bl32 = rate_f32(sh, &a32, &b32, &mut |a, b, c| blocked::gemm_nn_f32(m, n, k, a, b, c));
        let sc32 = rate_f32(sh, &a32, &b32, &mut |a, b, c| scalar.nn_f32(m, n, k, a, b, c));
        let nat32 = native.map(|kern| rate_f32(sh, &a32, &b32, &mut |a, b, c| kern.nn_f32(m, n, k, a, b, c)));
        let bl64 = rate_f64(sh, &a64, &b64, &mut |a, b, c| blocked::gemm_nn_f64(m, n, k, a, b, c));
        let sc64 = rate_f64(sh, &a64, &b64, &mut |a, b, c| scalar.nn_f64(m, n, k, a, b, c));
        let nat64 = native.map(|kern| rate_f64(sh, &a64, &b64, &mut |a, b, c| kern.nn_f64(m, n, k, a, b, c)));

        let spd = nat32.map(|nv| nv / bl32);
        println!(
            "{:>15} {m}x{n}x{k}: f32 blocked {bl32:7.2} scalar {sc32:7.2} native {:>7} GF/s \
             (native/blocked {})  f64 blocked {bl64:6.2} scalar {sc64:6.2} native {:>6}",
            sh.class,
            nat32.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
            spd.map(|v| format!("{v:.2}x")).unwrap_or_else(|| "n/a".into()),
            nat64.map(|v| format!("{v:.2}")).unwrap_or_else(|| "-".into()),
        );
        let mut fields = vec![
            ("class", s(sh.class)),
            ("m", num(m)),
            ("n", num(n)),
            ("k", num(k)),
            ("f32_blocked_gfs", num(bl32)),
            ("f32_scalar_gfs", num(sc32)),
            ("f64_blocked_gfs", num(bl64)),
            ("f64_scalar_gfs", num(sc64)),
        ];
        if let (Some(n32), Some(n64)) = (nat32, nat64) {
            fields.push(("f32_native_gfs", num(n32)));
            fields.push(("f64_native_gfs", num(n64)));
            fields.push(("f32_native_vs_blocked", num(n32 / bl32)));
            fields.push(("f64_native_vs_blocked", num(n64 / bl64)));
        }
        entries.push(obj(fields));
    }

    let doc = obj(vec![
        ("bench", s("gemm_kernels")),
        ("mode", s("interleaved-best-of-reps")),
        ("reps", num(REPS)),
        ("native_class", s(native_tag)),
        // Gated only when a native class exists on the host; the margins
        // carry slack below the committed measurements (see BENCH_gemm.json).
        (
            "acceptance",
            Value::Array(vec![
                obj(vec![
                    ("class", s("tall_skinny_m1")),
                    ("metric", s("f32_native_vs_blocked")),
                    ("min_speedup", num(1.3)),
                ]),
                obj(vec![
                    ("class", s("tall_skinny_m3")),
                    ("metric", s("f32_native_vs_blocked")),
                    ("min_speedup", num(1.3)),
                ]),
            ]),
        ),
        ("classes", Value::Array(entries)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(out, serde_json::to_string(&doc).unwrap()).unwrap();
    println!("wrote {out} (native class: {native_tag})");
}
