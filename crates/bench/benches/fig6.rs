//! Regenerates Fig. 6: the water O–O RDF under the three precision paths.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::fig6;

fn bench(c: &mut Criterion) {
    let curves = fig6::run(fig6::Fig6Config::default());
    dpmd_bench::banner("Fig. 6", &fig6::table(&curves).render());
    println!(
        "max |Δg| vs Double: MIX-fp32 {:.3}, MIX-fp16 {:.3} (paper: curves overlap)\n",
        fig6::max_deviation(&curves[0], &curves[1]),
        fig6::max_deviation(&curves[0], &curves[2])
    );

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("rdf_short_run", |b| {
        let cfg = fig6::Fig6Config { cells: 3, steps: 40, sample_every: 10, train_frames: 1, epochs: 5, seed: 2 };
        let model = fig6::trained_water_model(&cfg);
        b.iter(|| fig6::rdf_at(&model, nnet::precision::Precision::Mix32, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
