//! Batched vs. sequential multi-replica throughput (the PR-4 acceptance
//! bench): 8 Cu replicas stepped through one shared engine, either one
//! replica at a time (`run_sequential`) or with every round's force
//! evaluations fused into type-sorted batched GEMMs (`run`).
//!
//! Both modes produce bit-identical trajectories (enforced by
//! `tests/batch_determinism.rs`), so this measures pure scheduling/fusion
//! throughput, not an accuracy trade. Since the solo engine gained the same
//! type-sorted embedding GEMMs, fused activations, and native SIMD dispatch
//! the batch path uses, the batched margin is *cross-replica* fusion only:
//! stacked fitting-net rows and the reused [`BatchWorkspace`] killing
//! per-round allocator churn. The tiny serving model is now near parity
//! (gated as a no-regression bar); the production-sized fitting nets (240³)
//! still amortize GEMM setup across replicas and keep a real margin.
//!
//! Measurement is interleaved best-of-N because CI hosts are noisy: each
//! rep rebuilds both schedulers from identical [`EngineParts`] and times a
//! full sequential pass against a full batched pass back to back.
//!
//! Emits `BENCH_batch.json` at the repo root — the acceptance records are
//! committed measurements minus host-noise slack: `≥ 0.95` (no regression)
//! for `cu_serving`, `≥ 1.2` for `cu_production` (fixed fleet, production
//! model), and `≥ 1.2` for `cu_production_continuous` (the production model
//! served through the continuous-batching front end, staggered arrivals
//! included). All three rows are gated in CI.

use std::time::Instant;

use deepmd::config::DeepPotConfig;
use dpmd_core::prelude::{DeepPotModel, Precision};
use dpmd_core::Engine;
use dpmd_serve::{ArrivalScript, BatchScheduler, ContinuousScheduler, InFlightCap};
use serde::Value;

fn num<T: std::fmt::Display>(v: T) -> Value {
    Value::Number(v.to_string())
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

const REPLICAS: usize = 8;
const REPS: usize = 9;

struct Config {
    name: &'static str,
    model: DeepPotConfig,
    cells: usize,
    steps: u64,
    /// `Some(script)`: measure the continuous-batching service driving this
    /// deterministic arrival schedule instead of the fixed-fleet scheduler.
    /// The sequential baseline is identical either way (same seeds, same
    /// steps), so speedups are comparable across rows.
    script: Option<&'static str>,
}

fn parts(cfg: &Config) -> dpmd_core::EngineParts {
    Engine::builder()
        .seed(2024)
        .copper_cells(cfg.cells)
        .precision(Precision::Mix32)
        .with_model(DeepPotModel::new(cfg.model.clone()))
        .build_parts()
}

fn main() {
    let configs = [
        // Serving-sized Cu model: the solo engine's own fusion closed the
        // gap here, so this row gates "batching never costs throughput".
        Config {
            name: "cu_serving",
            model: DeepPotConfig::tiny(1, 6.0),
            cells: 2,
            steps: 30,
            script: None,
        },
        // Production-sized fitting net (240^3): cross-replica row stacking
        // still pays. Gated at >= 1.2x (the committed measurement minus
        // host-noise slack).
        Config {
            name: "cu_production",
            model: DeepPotConfig::copper(),
            cells: 2,
            steps: 5,
            script: None,
        },
        // The production model under the continuous-batching service:
        // tenants arrive staggered over the first rounds and the admission
        // queue keeps the fused batch full until the tail drains. Gated in
        // CI at >= 1.2x over the same tenants stepped sequentially.
        Config {
            name: "cu_production_continuous",
            model: DeepPotConfig::copper(),
            cells: 2,
            steps: 10,
            script: Some("seed=2024;tenants=8;steps=10;window=2"),
        },
    ];

    let mut entries = Vec::new();
    for cfg in &configs {
        let (mut best_seq, mut best_bat) = (f64::MAX, f64::MAX);
        let mut natoms = 0;
        for _ in 0..REPS {
            match cfg.script {
                // Fixed-fleet rows: scheduler construction (which includes
                // each replica's solo initial force evaluation) happens
                // outside the timed region on both sides — this measures
                // pure stepping throughput.
                None => {
                    let mut seq = BatchScheduler::new(parts(cfg), REPLICAS, cfg.steps);
                    let t0 = Instant::now();
                    seq.run_sequential();
                    best_seq = best_seq.min(t0.elapsed().as_secs_f64());

                    let mut bat = BatchScheduler::new(parts(cfg), REPLICAS, cfg.steps);
                    let t0 = Instant::now();
                    bat.run();
                    best_bat = best_bat.min(t0.elapsed().as_secs_f64());
                    natoms = bat.replicas().iter().map(|r| r.sim.atoms.nlocal).sum();
                }
                // Continuous row: full service turnaround — trajectory
                // construction and initialization included on BOTH sides,
                // because that is the work a long-running service actually
                // does per tenant. The solo path pays one initial force
                // evaluation per tenant; the service fuses the newcomers'
                // initial evaluations into batched GEMMs too.
                Some(spec) => {
                    let script = ArrivalScript::parse(spec).unwrap();
                    assert_eq!(script.tenants, REPLICAS, "script fleet must match baseline");
                    assert_eq!(script.steps, cfg.steps, "script steps must match baseline");

                    let p = parts(cfg);
                    let t0 = Instant::now();
                    let mut seq = BatchScheduler::new(p, REPLICAS, cfg.steps);
                    seq.run_sequential();
                    best_seq = best_seq.min(t0.elapsed().as_secs_f64());

                    let p = parts(cfg);
                    let t0 = Instant::now();
                    let mut served = ContinuousScheduler::new(p, InFlightCap::All, usize::MAX);
                    let outcome = served.run_script(&script);
                    best_bat = best_bat.min(t0.elapsed().as_secs_f64());
                    assert!(outcome.rejected.is_empty());
                    natoms = served.tenants().iter().map(|t| t.sim.atoms.nlocal).sum();
                }
            }
        }
        let steps_total = REPLICAS as f64 * cfg.steps as f64;
        let speedup = best_seq / best_bat;
        println!(
            "{:>14}: {REPLICAS} replicas x {} steps ({natoms} atoms) \
             sequential {best_seq:.3}s batched {best_bat:.3}s speedup {speedup:.2}x",
            cfg.name, cfg.steps,
        );
        entries.push(obj(vec![
            ("name", s(cfg.name)),
            ("replicas", num(REPLICAS)),
            ("steps_per_replica", num(cfg.steps)),
            ("atoms_total", num(natoms)),
            ("sequential_s", num(best_seq)),
            ("batched_s", num(best_bat)),
            ("sequential_steps_per_s", num(steps_total / best_seq)),
            ("batched_steps_per_s", num(steps_total / best_bat)),
            ("speedup", num(speedup)),
        ]));
    }

    let doc = obj(vec![
        ("bench", s("batch_replicas")),
        ("mode", s("interleaved-best-of-reps")),
        ("reps", num(REPS)),
        (
            "acceptance",
            Value::Array(vec![
                obj(vec![("config", s("cu_serving")), ("min_speedup", num(0.95))]),
                obj(vec![("config", s("cu_production")), ("min_speedup", num(1.2))]),
                obj(vec![("config", s("cu_production_continuous")), ("min_speedup", num(1.2))]),
            ]),
        ),
        ("configs", Value::Array(entries)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(out, serde_json::to_string(&doc).unwrap()).unwrap();
    println!("wrote {out}");
}
