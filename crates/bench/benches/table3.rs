//! Regenerates Table III: pair time and atom-count statistics across ranks
//! with/without intra-node load balance.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::table3;

fn bench(c: &mut Criterion) {
    let rows = table3::run(2024);
    dpmd_bench::banner("Table III", &table3::table(&rows).render());
    println!(
        "atomic dispersion reduction: {:.1}% (paper: 79.7%)\n",
        table3::dispersion_reduction(&rows) * 100.0
    );

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("stats_sweep", |b| b.iter(|| table3::run(1)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
