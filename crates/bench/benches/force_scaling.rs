//! Threaded force-evaluation scaling: 1 thread vs N threads on the same
//! system, same model, same neighbour list.
//!
//! The acceptance bar from the parallel-pipeline work: ≥2× speedup at
//! 4 threads on 4³ FCC copper cells (256 atoms) — on a host with ≥4
//! cores. On a single-core host (CI containers: `nproc` = 1) wider pools
//! can only add oversubscription overhead, so this bench then reports the
//! pool's scheduling cost instead of its scaling. The result is
//! bit-identical at every pool width (chunk-ordered reduction), so the
//! bench measures pure wall-time scaling, not an accuracy/speed trade.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use deepmd::config::DeepPotConfig;
use deepmd::model::DeepPotModel;
use dpmd_threads::ThreadPool;
use minimd::lattice::fcc_copper;
use minimd::neighbor::{ListKind, NeighborList};
use minimd::vec3::Vec3;

fn force_eval_threads(c: &mut Criterion) {
    let (bx, mut atoms) = fcc_copper(4, 4, 4);
    // Perturb off lattice sites so all pipeline branches do real work.
    for (k, p) in atoms.pos.iter_mut().enumerate() {
        p.x += 0.05 * ((k % 7) as f64 - 3.0) / 3.0;
        p.y += 0.04 * ((k % 5) as f64 - 2.0) / 2.0;
        p.z += 0.03 * ((k % 3) as f64 - 1.0);
        *p = bx.wrap(*p);
    }
    let model = DeepPotModel::new(DeepPotConfig::tiny(1, 6.0));
    let mut nl = NeighborList::new(model.config.rcut, 1.0, ListKind::Full);
    nl.build(&atoms, &bx);
    let mut forces = vec![Vec3::ZERO; atoms.len()];

    let mut group = c.benchmark_group("force_eval_256_atoms");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        let name = format!("threads_{threads}");
        group.bench_function(&name, |b| {
            b.iter(|| {
                let (out, _) = model.energy_forces_on(
                    &pool,
                    black_box(&atoms),
                    black_box(&nl),
                    &bx,
                    &mut forces,
                );
                black_box(out.energy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, force_eval_threads);
criterion_main!(benches);
