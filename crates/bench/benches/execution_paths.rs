//! The paper's §III-B1 measured on the host: the same Deep Potential
//! inference through (a) the TensorFlow-analog graph runtime, (b) the graph
//! after fusion/dead-kernel optimization, (c) the direct reference path,
//! and (d) the mixed-precision engines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use deepmd::config::DeepPotConfig;
use deepmd::engine::DpEngine;
use deepmd::graph_exec::GraphExecutor;
use deepmd::model::DeepPotModel;
use minimd::lattice::fcc_copper;
use minimd::neighbor::{ListKind, NeighborList};
use minimd::vec3::Vec3;
use nnet::precision::Precision;

fn bench(c: &mut Criterion) {
    let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
    let (bx, atoms) = fcc_copper(3, 3, 3);
    let mut nl = NeighborList::new(model.config.rcut, 0.5, ListKind::Full);
    nl.build(&atoms, &bx);
    let mut forces = vec![Vec3::ZERO; atoms.len()];

    let mut group = c.benchmark_group("dp_inference_108_atoms");
    group.sample_size(10);
    group.bench_function("direct_f64_reference", |b| {
        b.iter(|| {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            black_box(model.energy_forces(&atoms, &nl, &bx, &mut forces))
        })
    });
    group.bench_function("graph_runtime_baseline", |b| {
        // The per-atom session graphs are cached across iterations (as TF
        // caches by shape); the measured cost is interpretation + per-run
        // allocation, the real part of what rmtf removes.
        let mut exec = GraphExecutor::new(&model);
        b.iter(|| {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            black_box(exec.energy_forces(&atoms, &nl, &bx, &mut forces))
        })
    });
    group.bench_function("engine_mix_fp32", |b| {
        let engine = DpEngine::new(model.clone(), Precision::Mix32);
        b.iter(|| {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            black_box(engine.energy_forces(&atoms, &nl, &bx, &mut forces))
        })
    });
    group.bench_function("engine_mix_fp16", |b| {
        let engine = DpEngine::new(model.clone(), Precision::Mix16);
        b.iter(|| {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            black_box(engine.energy_forces(&atoms, &nl, &bx, &mut forces))
        })
    });
    group.bench_function("compressed_tables", |b| {
        let mut compressed = model.clone();
        compressed.enable_compression(256);
        b.iter(|| {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            black_box(compressed.energy_forces(&atoms, &nl, &bx, &mut forces))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
