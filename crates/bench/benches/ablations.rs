//! Regenerates the design-choice ablation sweeps (DESIGN.md §4's "ablation
//! benches": TNI count, sync latency, NIC cache capacity, leader × driving).

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::ablations;

use dpmd_scaling::experiments::portability;

fn bench(c: &mut Criterion) {
    dpmd_bench::banner("Ablations", &ablations::table().render());
    dpmd_bench::banner("Portability (§V)", &portability::table(&portability::run()).render());

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("tni_sweep", |b| b.iter(ablations::tni_sweep));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
