//! Regenerates Fig. 9: the seven-bar optimization ladder for both systems
//! at {1, 2, 8} atoms/core on 96 nodes, then times one ladder evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::fig9;
use dpmd_scaling::systems::SystemSpec;

fn bench(c: &mut Criterion) {
    let rows = fig9::run();
    dpmd_bench::banner("Fig. 9", &fig9::table(&rows).render());

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("copper_ladder_1_atom_per_core", |b| {
        b.iter(|| fig9::run_config(SystemSpec::copper(), 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
