//! Regenerates Fig. 7: the eight communication bars over both cutoffs and
//! all three sub-box configurations, then times one strong-scaling
//! node-based exchange simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::fig7;
use fugaku::machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::default();
    let rows = fig7::run(&machine);
    dpmd_bench::banner("Fig. 7", &fig7::table(&rows).render());

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("node_scheme_strong_scaling_96_nodes", |b| {
        b.iter(|| fig7::run_config(&machine, 8.0, [0.5, 0.5, 0.5]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
