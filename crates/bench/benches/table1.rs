//! Regenerates Table I: the NNMD package survey with the two "This work"
//! rows measured on the simulated machine (full five-topology sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::table1;

fn bench(c: &mut Criterion) {
    // Full sweep to the 12,000-node endpoint (the paper's headline rows).
    dpmd_bench::banner("Table I", &table1::table(5).render());

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("this_work_rows_768_nodes", |b| b.iter(|| table1::this_work_rows(1)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
