//! Regenerates Fig. 8: the RDMA memory-pool sweep (10k iterations, 8-byte
//! payloads, up to 124 neighbours), then times one sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::fig8;
use fugaku::machine::MachineConfig;

fn bench(c: &mut Criterion) {
    let machine = MachineConfig::default();
    let points = fig8::run(&machine, 10_000);
    dpmd_bench::banner("Fig. 8", &fig8::table(&points).render());
    if let Some(knee) = fig8::knee(&points) {
        println!("knee at {knee} neighbors (paper: departs at 44)\n");
    }

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("mempool_sweep_1k_iters", |b| b.iter(|| fig8::run(&machine, 1_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
