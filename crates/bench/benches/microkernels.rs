//! Micro-benchmarks of the computational kernels (§III-B2's claims measured
//! for real on the host):
//!
//! * sve-gemm vs blocked (BLAS stand-in) vs naive at the strong-scaling
//!   shapes (M ∈ {1, 2, 3}, 240-wide fitting layers);
//! * GEMM-NN vs GEMM-NT (the paper: NT ≈ half the NN rate at small sizes);
//! * f64 vs f32 vs fp16-storage GEMM rates;
//! * neighbour-list builds and descriptor assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use deepmd::descriptor::build_environments;
use minimd::lattice::fcc_copper;
use minimd::neighbor::{ListKind, NeighborList};
use nnet::f16::F16;
use nnet::gemm::{blocked, naive, simd};

fn gemm_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_m2_240x240");
    let (m, n, k) = (2usize, 240usize, 240usize);
    let a64: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37).sin()).collect();
    let b64: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.11).cos()).collect();
    let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
    let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
    let a16: Vec<F16> = a32.iter().map(|&x| F16::from_f32(x)).collect();
    let b16: Vec<F16> = b32.iter().map(|&x| F16::from_f32(x)).collect();
    let mut c64 = vec![0.0f64; m * n];
    let mut c32 = vec![0.0f32; m * n];

    group.bench_function("naive_f64", |bch| {
        bch.iter(|| naive::gemm_nn_f64(m, n, k, black_box(&a64), black_box(&b64), &mut c64))
    });
    group.bench_function("blocked_f64", |bch| {
        bch.iter(|| blocked::gemm_nn_f64(m, n, k, black_box(&a64), black_box(&b64), &mut c64))
    });
    group.bench_function("sve_f64", |bch| {
        bch.iter(|| simd::gemm_nn_f64(m, n, k, black_box(&a64), black_box(&b64), &mut c64))
    });
    group.bench_function("sve_f32", |bch| {
        bch.iter(|| simd::gemm_nn_f32(m, n, k, black_box(&a32), black_box(&b32), &mut c32))
    });
    group.bench_function("sve_f16_storage", |bch| {
        bch.iter(|| simd::gemm_nn_f16(m, n, k, black_box(&a16), black_box(&b16), &mut c32))
    });
    group.finish();
}

fn gemm_nt_vs_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nt_vs_nn");
    // The backward-pass shape: 1×240 gradient times a 240×240 parameter
    // matrix, with and without the pre-transposed copy.
    let (m, n, k) = (1usize, 240usize, 240usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.3).sin()).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.7).cos()).collect();
    let bt: Vec<f32> = {
        let mut t = vec![0.0; n * k];
        for r in 0..k {
            for cc in 0..n {
                t[cc * k + r] = b[r * n + cc];
            }
        }
        t
    };
    let mut out = vec![0.0f32; m * n];
    group.bench_function("nn_pretransposed", |bch| {
        bch.iter(|| simd::gemm_nn_f32(m, n, k, black_box(&a), black_box(&b), &mut out))
    });
    group.bench_function("nt_direct", |bch| {
        bch.iter(|| simd::gemm_nt_f32(m, n, k, black_box(&a), black_box(&bt), &mut out))
    });
    group.finish();
}

fn neighbor_and_descriptor(c: &mut Criterion) {
    let (bx, atoms) = fcc_copper(6, 6, 6);
    let mut group = c.benchmark_group("md_substrate");
    group.sample_size(20);
    group.bench_function("neighbor_list_build_864_atoms", |bch| {
        let mut nl = NeighborList::new(8.0, 2.0, ListKind::Full);
        bch.iter(|| nl.build(black_box(&atoms), &bx))
    });
    let mut nl = NeighborList::new(8.0, 2.0, ListKind::Full);
    nl.build(&atoms, &bx);
    group.bench_function("descriptor_environments_864_atoms", |bch| {
        bch.iter(|| black_box(build_environments(&atoms, &nl, &bx, 0.5, 8.0)))
    });
    group.finish();
}

fn f16_conversion(c: &mut Criterion) {
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
    c.bench_function("f16_roundtrip_4096", |bch| {
        bch.iter(|| {
            let h: Vec<F16> = xs.iter().map(|&x| F16::from_f32(black_box(x))).collect();
            let back: f32 = h.iter().map(|v| v.to_f32()).sum();
            black_box(back)
        })
    });
}

criterion_group!(benches, gemm_shapes, gemm_nt_vs_nn, neighbor_and_descriptor, f16_conversion);
criterion_main!(benches);
