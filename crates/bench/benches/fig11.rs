//! Regenerates Fig. 11: strong scaling of both benchmark systems from 768
//! to 12,000 nodes — the 149 / 68.5 ns/day headline.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::fig11;
use dpmd_scaling::systems::SystemSpec;

fn bench(c: &mut Criterion) {
    for spec in [SystemSpec::copper(), SystemSpec::water()] {
        let curve = fig11::run(spec, 5);
        dpmd_bench::banner(
            &format!("Fig. 11 ({:?})", spec.benchmark),
            &fig11::table(&curve).render(),
        );
        let p = curve.points.last().unwrap();
        println!(
            "endpoint: {:.1} ns/day on {} nodes; vs published baseline (4.7 ns/day Cu): {:.1}x\n",
            p.nsday_opt,
            p.nodes,
            p.nsday_opt / 4.7
        );
    }

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("copper_768_node_point", |b| {
        b.iter(|| fig11::run(SystemSpec::copper(), 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
