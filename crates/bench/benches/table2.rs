//! Regenerates Table II: energy/force error under Double, MIX-fp32 and
//! MIX-fp16 for a Deep Potential trained on reference labels.

use criterion::{criterion_group, criterion_main, Criterion};
use dpmd_scaling::experiments::table2;

fn bench(c: &mut Criterion) {
    let rows = table2::run(table2::Table2Config::default());
    dpmd_bench::banner("Table II", &table2::table(&rows).render());
    println!("(paper: Double 1.6e-3 / 4.4e-2; MIX-fp32 identical; MIX-fp16 4.0e-3 / 4.4e-2)\n");

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("precision_eval_small", |b| {
        b.iter(|| {
            table2::run(table2::Table2Config { frames: 2, cells: 2, epochs: 10, amp: 0.08, seed: 1 })
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
