//! The pair-phase time model.
//!
//! DeePMD evaluates atoms one by one (§III-C: "the evaluation of two local
//! atoms takes nearly twice as long as that of one atom"), so a rank's pair
//! time is set by its *busiest thread*: `t = t_atom · max_thread_atoms`,
//! plus a fixed per-step base (descriptor bookkeeping, list traversal) and
//! optional noise standing in for "system jitter, cache contention, and
//! other uncontrollable factors" the paper mentions. Noise is drawn once
//! per *node* and shared between the lb and no-lb evaluations of the same
//! step, so scheme comparisons are paired rather than fighting independent
//! random draws.

use minimd::domain::{Decomposition, CORES_PER_NODE, THREADS_PER_RANK};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::assign::{busiest_thread_atoms, lb_busiest_thread_atoms};

/// Pair-time model parameters.
///
/// A thread's pair time has two parts: the NN inference, which is
/// atom-granular (a thread with k atoms pays `k · t_atom_ns`, so the rank
/// pays for its busiest thread), and the smooth per-atom bookkeeping —
/// neighbour-list traversal, descriptor assembly — which divides evenly
/// over the threads that share the queue (`t_smooth_ns · atoms/threads`).
#[derive(Clone, Copy, Debug)]
pub struct PairTimeModel {
    /// Time to evaluate one atom on one thread, ns (DeePMD inference).
    pub t_atom_ns: f64,
    /// Smooth per-atom bookkeeping cost, ns, amortized across the threads
    /// sharing the work queue (12 per rank, 48 per node under lb).
    pub t_smooth_ns: f64,
    /// Fixed per-step overhead per rank, ns.
    pub base_ns: f64,
    /// Relative jitter amplitude (0 = deterministic).
    pub jitter: f64,
}

impl PairTimeModel {
    /// A model with the given per-atom cost and 3% jitter.
    pub fn new(t_atom_ns: f64) -> Self {
        PairTimeModel {
            t_atom_ns,
            t_smooth_ns: 0.2 * t_atom_ns,
            base_ns: 0.3 * t_atom_ns,
            jitter: 0.03,
        }
    }

    /// One multiplicative jitter factor per node, drawn in node order.
    ///
    /// Jitter stands in for node-level noise — OS activity, cache and
    /// memory-bandwidth contention — which is a property of the hardware at
    /// that step, *not* of the decomposition scheme running on it. Both the
    /// lb and no-lb paths therefore consume the same per-node factors
    /// (common random numbers), so comparing the two schemes measures the
    /// scheme and not the luck of independent draws. It also preserves the
    /// invariant that pooling a node's work can never be slower than its
    /// worst rank: `lb_busiest(Σcᵣ) ≤ maxᵣ busiest(cᵣ)` survives scaling
    /// both sides by the same factor.
    fn node_factors(&self, decomp: &Decomposition, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..decomp.num_nodes()).map(|_| 1.0 + self.jitter_draw(&mut rng)).collect()
    }

    /// Per-rank pair times without intra-node load balance.
    pub fn rank_times_nolb(
        &self,
        decomp: &Decomposition,
        counts_per_rank: &[u32],
        seed: u64,
    ) -> Vec<f64> {
        let factors = self.node_factors(decomp, seed);
        let mut out = vec![0.0; decomp.num_ranks()];
        for (node, &factor) in factors.iter().enumerate() {
            for &r in &decomp.node_ranks(node) {
                let c = counts_per_rank[r];
                let t = self.base_ns
                    + self.t_atom_ns * busiest_thread_atoms(c) as f64
                    + self.t_smooth_ns * c as f64 / THREADS_PER_RANK as f64;
                out[r] = t * factor;
            }
        }
        out
    }

    /// Per-rank pair times with intra-node load balance: all four ranks of
    /// a node finish together (they share the pooled work), set by the
    /// busiest of the node's 48 threads.
    pub fn rank_times_lb(
        &self,
        decomp: &Decomposition,
        counts_per_rank: &[u32],
        seed: u64,
    ) -> Vec<f64> {
        let factors = self.node_factors(decomp, seed);
        let mut out = vec![0.0; decomp.num_ranks()];
        for (node, &factor) in factors.iter().enumerate() {
            let ranks = decomp.node_ranks(node);
            let total: u32 = ranks.iter().map(|&r| counts_per_rank[r]).sum();
            let t = self.base_ns
                + self.t_atom_ns * lb_busiest_thread_atoms(total) as f64
                + self.t_smooth_ns * total as f64 / CORES_PER_NODE as f64;
            for &r in &ranks {
                out[r] = t * factor;
            }
        }
        out
    }

    fn jitter_draw(&self, rng: &mut StdRng) -> f64 {
        if self.jitter == 0.0 {
            0.0
        } else {
            rng.random_range(-self.jitter..self.jitter)
        }
    }

    /// The simulation-step pair time is the slowest rank (§III-C: "the key
    /// to performance improvement is to speed up the slowest MPI rank").
    pub fn step_time(times: &[f64]) -> f64 {
        times.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::lattice::fcc_copper;
    use minimd::simbox::SimBox;

    fn setup() -> (Decomposition, Vec<u32>) {
        let (_, atoms) = fcc_copper(12, 12, 12);
        // 6×6×6 nodes → 864 ranks, 8 atoms/rank on average.
        let decomp = Decomposition::new(SimBox::cubic(12.0 * 3.615), [6, 6, 6]);
        let counts = decomp.counts_per_rank(&atoms);
        (decomp, counts)
    }

    #[test]
    fn lb_reduces_max_pair_time_and_sdmr() {
        let (decomp, counts) = setup();
        let model = PairTimeModel::new(1000.0);
        let nolb = model.rank_times_nolb(&decomp, &counts, 1);
        let lb = model.rank_times_lb(&decomp, &counts, 1);
        let max_nolb = PairTimeModel::step_time(&nolb);
        let max_lb = PairTimeModel::step_time(&lb);
        assert!(max_lb <= max_nolb, "{max_lb} vs {max_nolb}");
        let s_nolb = crate::stats::sdmr(&nolb);
        let s_lb = crate::stats::sdmr(&lb);
        assert!(s_lb < s_nolb, "SDMR {s_lb} vs {s_nolb}");
    }

    #[test]
    fn deterministic_without_jitter() {
        let (decomp, counts) = setup();
        let model = PairTimeModel { t_atom_ns: 500.0, t_smooth_ns: 100.0, base_ns: 100.0, jitter: 0.0 };
        let a = model.rank_times_lb(&decomp, &counts, 1);
        let b = model.rank_times_lb(&decomp, &counts, 999);
        assert_eq!(a, b, "seed must not matter at zero jitter");
    }

    #[test]
    fn pair_time_steps_with_thread_occupancy() {
        // 12 atoms on a rank = 1 atom/thread; 13 atoms = one thread with 2.
        let decomp = Decomposition::new(SimBox::cubic(10.0), [1, 1, 1]);
        let model = PairTimeModel { t_atom_ns: 1000.0, t_smooth_ns: 0.0, base_ns: 0.0, jitter: 0.0 };
        let t = model.rank_times_nolb(&decomp, &[12, 13, 24, 0], 0);
        assert_eq!(t[0], 1000.0);
        assert_eq!(t[1], 2000.0);
        assert_eq!(t[2], 2000.0, "atom-by-atom: 2 atoms/thread = 2× time");
        assert_eq!(t[3], 0.0);
    }

    #[test]
    fn jitter_is_paired_across_schemes() {
        // The same node must see the same jitter factor in both schemes:
        // give every rank exactly 12 atoms so busiest counts coincide, then
        // the lb and no-lb times must match *including* noise.
        let decomp = Decomposition::new(SimBox::cubic(20.0), [2, 2, 2]);
        let counts = vec![12u32; decomp.num_ranks()];
        let model = PairTimeModel { t_atom_ns: 1000.0, t_smooth_ns: 200.0, base_ns: 250.0, jitter: 0.05 };
        let nolb = model.rank_times_nolb(&decomp, &counts, 7);
        let lb = model.rank_times_lb(&decomp, &counts, 7);
        assert_eq!(nolb, lb, "uniform load: lb must be a no-op, jitter included");
    }
}
