//! LAMMPS-style *rank-level* load balancing: shifting sub-box borders.
//!
//! §III-C: "LAMMPS offers load-balance features to adjust the sub-box
//! border to balance the local atom count, [but] this approach often
//! introduces additional communication overhead and provides limited
//! assistance for systems with uniform density." We implement the staggered
//! recursive-bisection style balancer over the three grid axes so the claim
//! can be *measured* against the paper's node-box pooling.
//!
//! The balancer adjusts the grid's cut planes per axis so that each slab
//! holds (as close as possible to) the same atom count, using the marginal
//! atom distributions. For a uniform-density system the marginals are flat
//! and the cuts barely move — exactly the "limited assistance" the paper
//! reports — while strongly non-uniform systems improve a lot.

use minimd::atoms::Atoms;
use minimd::simbox::SimBox;

/// Per-axis cut planes: `cuts[d]` has `n_d + 1` increasing coordinates from
/// `lo[d]` to `hi[d]`.
#[derive(Clone, Debug)]
pub struct StaggeredGrid {
    /// The global box.
    pub bx: SimBox,
    /// Grid dimensions (ranks per axis).
    pub dims: [usize; 3],
    /// Cut planes per axis.
    pub cuts: [Vec<f64>; 3],
}

impl StaggeredGrid {
    /// A uniform grid (the starting point before balancing).
    pub fn uniform(bx: SimBox, dims: [usize; 3]) -> Self {
        let l = bx.lengths();
        let cuts = [0, 1, 2].map(|d| {
            (0..=dims[d]).map(|k| bx.lo[d] + l[d] * k as f64 / dims[d] as f64).collect::<Vec<f64>>()
        });
        StaggeredGrid { bx, dims, cuts }
    }

    /// Rebalance the cut planes to equalize per-slab atom counts along each
    /// axis, using weighted quantiles of the atoms' coordinates. `stiffness`
    /// ∈ (0, 1] limits how far a cut may move per call (LAMMPS' damping).
    pub fn rebalance(&mut self, atoms: &Atoms, stiffness: f64) {
        assert!(stiffness > 0.0 && stiffness <= 1.0);
        for d in 0..3 {
            let n = self.dims[d];
            if n < 2 {
                continue;
            }
            let mut coords: Vec<f64> = atoms.pos[..atoms.nlocal].iter().map(|p| p[d]).collect();
            coords.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for k in 1..n {
                // Target: the k/n quantile of the marginal distribution.
                let q = k as f64 / n as f64;
                let idx = ((coords.len() as f64 - 1.0) * q).round() as usize;
                let target = coords[idx.min(coords.len() - 1)];
                let current = self.cuts[d][k];
                let moved = current + stiffness * (target - current);
                // Keep cuts strictly ordered with a minimal slab width.
                let min_w = 1e-3 * self.bx.lengths()[d];
                let lo = self.cuts[d][k - 1] + min_w;
                let hi = self.cuts[d][k + 1] - min_w;
                self.cuts[d][k] = moved.clamp(lo, hi.max(lo));
            }
        }
    }

    /// Which rank-grid cell owns a coordinate (by binary search per axis).
    pub fn cell_of(&self, p: minimd::vec3::Vec3) -> [usize; 3] {
        let mut c = [0usize; 3];
        for d in 0..3 {
            let cuts = &self.cuts[d];
            let x = p[d];
            // First cut greater than x ⇒ slab index (clamped).
            let mut idx = cuts.partition_point(|&cut| cut <= x);
            idx = idx.saturating_sub(1).min(self.dims[d] - 1);
            c[d] = idx;
        }
        c
    }

    /// Atom counts per grid cell (x fastest).
    pub fn counts(&self, atoms: &Atoms) -> Vec<u32> {
        let mut out = vec![0u32; self.dims.iter().product()];
        for &p in &atoms.pos[..atoms.nlocal] {
            let c = self.cell_of(p);
            out[(c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::sdmr;
    use minimd::atoms::{copper_species, Atoms};
    use minimd::vec3::Vec3;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_atoms(n: usize, bx: &SimBox, bias: bool, seed: u64) -> Atoms {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut atoms = Atoms::new(copper_species());
        let l = bx.lengths();
        for i in 0..n {
            // Optionally pile density toward −x (a strongly non-uniform
            // system, where border shifting SHOULD help).
            let u: f64 = rng.random_range(0.0..1.0);
            let x = if bias { u * u * l.x } else { u * l.x };
            atoms.push_local(
                i as u64 + 1,
                0,
                Vec3::new(x, rng.random_range(0.0..l.y), rng.random_range(0.0..l.z)),
                Vec3::ZERO,
            );
        }
        atoms
    }

    #[test]
    fn balancer_helps_a_lot_on_skewed_density() {
        let bx = SimBox::new(40.0, 40.0, 40.0);
        let atoms = random_atoms(4000, &bx, true, 1);
        let mut grid = StaggeredGrid::uniform(bx, [4, 4, 4]);
        let before = sdmr(&grid.counts(&atoms).iter().map(|&c| c as f64).collect::<Vec<_>>());
        for _ in 0..5 {
            grid.rebalance(&atoms, 0.8);
        }
        let after = sdmr(&grid.counts(&atoms).iter().map(|&c| c as f64).collect::<Vec<_>>());
        assert!(after < 0.6 * before, "skewed: {before:.1}% -> {after:.1}%");
    }

    #[test]
    fn balancer_gives_limited_assistance_on_uniform_density() {
        // The paper's observation: for uniform density at fine grain, border
        // shifting barely moves the needle (Poisson noise is not a marginal
        // density gradient).
        let bx = SimBox::new(40.0, 40.0, 40.0);
        let atoms = random_atoms(768, &bx, false, 2); // 12 atoms/cell
        let mut grid = StaggeredGrid::uniform(bx, [4, 4, 4]);
        let before = sdmr(&grid.counts(&atoms).iter().map(|&c| c as f64).collect::<Vec<_>>());
        for _ in 0..5 {
            grid.rebalance(&atoms, 0.8);
        }
        let after = sdmr(&grid.counts(&atoms).iter().map(|&c| c as f64).collect::<Vec<_>>());
        // Some improvement is possible, but nothing like the node-pooling
        // 3–8× SDMR reduction of Table III.
        assert!(after > 0.4 * before, "uniform: {before:.1}% -> {after:.1}% — too good to be true");
    }

    #[test]
    fn counts_are_conserved_and_cells_cover_the_box() {
        let bx = SimBox::new(30.0, 20.0, 10.0);
        let atoms = random_atoms(500, &bx, true, 3);
        let mut grid = StaggeredGrid::uniform(bx, [3, 2, 2]);
        grid.rebalance(&atoms, 1.0);
        let counts = grid.counts(&atoms);
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), 500);
        // Cuts stay sorted.
        for d in 0..3 {
            for w in grid.cuts[d].windows(2) {
                assert!(w[1] > w[0], "axis {d} cuts unsorted");
            }
        }
    }
}
