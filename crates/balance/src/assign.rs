//! Atom-to-rank and atom-to-thread assignment policies.
//!
//! *Without* intra-node load balance each rank evaluates exactly the atoms
//! of its own sub-box. *With* it, the four ranks of a node pool their atoms
//! (they already hold identical copies after the node-based exchange,
//! Fig. 5b) and split the pooled count evenly — so thread loads across the
//! node differ by at most one atom.

use minimd::domain::{Decomposition, CORES_PER_NODE, RANKS_PER_NODE, THREADS_PER_RANK};

/// The even-split policy as contiguous index ranges: `even_chunks(total,
/// parts)` splits `0..total` into at most `parts` ranges whose lengths
/// differ by at most one — the same rule [`lb_rank_loads`] applies to a
/// node's pooled atom count, exposed in range form for the shared-memory
/// force pipeline (neighbor build, descriptor/embedding/fitting passes).
/// The implementation lives in `dpmd-threads` so `minimd` can use it
/// without a dependency cycle.
pub use dpmd_threads::{atom_chunks, even_chunks};

/// Per-rank workloads under the baseline policy (each rank owns its
/// sub-box atoms).
pub fn nolb_rank_loads(counts_per_rank: &[u32]) -> Vec<u32> {
    counts_per_rank.to_vec()
}

/// Per-rank workloads under intra-node load balance: the node total split
/// as evenly as integers allow across its 4 ranks.
pub fn lb_rank_loads(decomp: &Decomposition, counts_per_rank: &[u32]) -> Vec<u32> {
    assert_eq!(counts_per_rank.len(), decomp.num_ranks());
    let mut out = vec![0u32; decomp.num_ranks()];
    for node in 0..decomp.num_nodes() {
        let ranks = decomp.node_ranks(node);
        let total: u32 = ranks.iter().map(|&r| counts_per_rank[r]).sum();
        let base = total / RANKS_PER_NODE as u32;
        let extra = (total % RANKS_PER_NODE as u32) as usize;
        for (k, &r) in ranks.iter().enumerate() {
            out[r] = base + u32::from(k < extra);
        }
    }
    out
}


/// Per-species evaluation weights: DeePMD's per-atom cost scales with the
/// neighbour count, which differs by species (paper §IV: 92 neighbours per
/// O vs 46 per H at r_c = 6 Å — oxygen atoms cost about twice as much).
#[derive(Clone, Debug)]
pub struct SpeciesWeights {
    /// Relative cost per species (index = species id).
    pub weight: Vec<f64>,
}

impl SpeciesWeights {
    /// Uniform weights (single-species systems).
    pub fn uniform(ntypes: usize) -> Self {
        SpeciesWeights { weight: vec![1.0; ntypes] }
    }

    /// The paper's water budgets: O = 92, H = 46 ⇒ weights (2, 1).
    pub fn water() -> Self {
        SpeciesWeights { weight: vec![2.0, 1.0] }
    }

    /// Weighted load of a rank given its atoms' species.
    pub fn rank_load(&self, species: &[u32]) -> f64 {
        species.iter().map(|&t| self.weight[t as usize]).sum()
    }
}

/// Weighted per-rank loads from per-rank species lists, under the node-box
/// even split: each node splits its *weighted* load across its four ranks
/// (the real generalization of the count split — the implementation splits
/// atoms greedily heaviest-first, the classic LPT heuristic).
pub fn lb_rank_loads_weighted(
    decomp: &Decomposition,
    species_per_rank: &[Vec<u32>],
    weights: &SpeciesWeights,
) -> Vec<f64> {
    assert_eq!(species_per_rank.len(), decomp.num_ranks());
    let mut out = vec![0.0; decomp.num_ranks()];
    for node in 0..decomp.num_nodes() {
        let ranks = decomp.node_ranks(node);
        // Pool the node's atom weights, sort heaviest first, LPT-assign.
        let mut pool: Vec<f64> = ranks
            .iter()
            .flat_map(|&r| species_per_rank[r].iter().map(|&t| weights.weight[t as usize]))
            .collect();
        pool.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut bins = [0.0f64; RANKS_PER_NODE];
        for w in pool {
            let (k, _) = bins
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("four bins");
            bins[k] += w;
        }
        for (k, &r) in ranks.iter().enumerate() {
            out[r] = bins[k];
        }
    }
    out
}

/// Atoms on the busiest *thread* of a rank that evaluates `rank_atoms`
/// atoms over its 12 threads (atom-by-atom evaluation ⇒ ceiling split).
pub fn busiest_thread_atoms(rank_atoms: u32) -> u32 {
    rank_atoms.div_ceil(THREADS_PER_RANK as u32)
}

/// Atoms on the busiest thread of a whole *node* under load balance:
/// the pooled count over 48 threads.
pub fn lb_busiest_thread_atoms(node_atoms: u32) -> u32 {
    node_atoms.div_ceil(CORES_PER_NODE as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minimd::lattice::fcc_copper;
    use minimd::simbox::SimBox;

    #[test]
    fn lb_preserves_totals_and_flattens_spread() {
        let (bx, atoms) = fcc_copper(8, 8, 8);
        let _ = bx;
        let decomp = Decomposition::new(SimBox::cubic(8.0 * 3.615), [4, 4, 4]);
        let counts = decomp.counts_per_rank(&atoms);
        let lb = lb_rank_loads(&decomp, &counts);
        assert_eq!(
            counts.iter().map(|&c| c as u64).sum::<u64>(),
            lb.iter().map(|&c| c as u64).sum::<u64>()
        );
        // Within each node, the lb loads differ by at most 1.
        for node in 0..decomp.num_nodes() {
            let loads: Vec<u32> = decomp.node_ranks(node).iter().map(|&r| lb[r]).collect();
            let (mn, mx) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
            assert!(mx - mn <= 1, "node {node}: {loads:?}");
        }
        // Spread is never worse.
        let s_no = crate::stats::sdmr(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>());
        let s_lb = crate::stats::sdmr(&lb.iter().map(|&c| c as f64).collect::<Vec<_>>());
        assert!(s_lb <= s_no, "{s_lb} vs {s_no}");
    }

    #[test]
    fn thread_splits_are_ceilings() {
        assert_eq!(busiest_thread_atoms(12), 1);
        assert_eq!(busiest_thread_atoms(13), 2);
        assert_eq!(busiest_thread_atoms(24), 2);
        assert_eq!(busiest_thread_atoms(0), 0);
        assert_eq!(lb_busiest_thread_atoms(48), 1);
        assert_eq!(lb_busiest_thread_atoms(49), 2);
        assert_eq!(lb_busiest_thread_atoms(96), 2);
    }


    #[test]
    fn weighted_split_balances_water_loads() {
        use minimd::lattice::water_box;
        let (bx, atoms) = water_box(6, 6, 6, 13);
        let decomp = Decomposition::new(bx, [2, 2, 2]);
        let mut species_per_rank: Vec<Vec<u32>> = vec![Vec::new(); decomp.num_ranks()];
        for i in 0..atoms.nlocal {
            species_per_rank[decomp.rank_of_pos(atoms.pos[i])].push(atoms.typ[i]);
        }
        let w = SpeciesWeights::water();
        let before: Vec<f64> =
            species_per_rank.iter().map(|s| w.rank_load(s)).collect();
        let after = lb_rank_loads_weighted(&decomp, &species_per_rank, &w);
        // Totals preserved.
        let t0: f64 = before.iter().sum();
        let t1: f64 = after.iter().sum();
        assert!((t0 - t1).abs() < 1e-9);
        // Weighted spread shrinks.
        let s0 = crate::stats::sdmr(&before);
        let s1 = crate::stats::sdmr(&after);
        assert!(s1 < s0, "{s1} vs {s0}");
        // Within a node, LPT keeps bins within one max-weight of each other.
        for node in 0..decomp.num_nodes() {
            let loads: Vec<f64> = decomp.node_ranks(node).iter().map(|&r| after[r]).collect();
            let spread = loads.iter().cloned().fold(f64::MIN, f64::max)
                - loads.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread <= 2.0 + 1e-9, "node {node}: spread {spread}");
        }
    }

    #[test]
    fn even_chunks_match_lb_rank_load_rule() {
        // The range form and the count form implement the same policy: a
        // node with 53 atoms split 4 ways gives loads {14, 13, 13, 13}.
        let chunks = even_chunks(53, RANKS_PER_NODE);
        let lens: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![14, 13, 13, 13]);
    }

    #[test]
    fn uniform_weights_reduce_to_count_split() {
        let w = SpeciesWeights::uniform(1);
        assert_eq!(w.rank_load(&[0, 0, 0]), 3.0);
        assert_eq!(SpeciesWeights::water().rank_load(&[0, 1, 1]), 4.0);
    }

    #[test]
    fn paper_observation_busiest_core_still_holds_2_atoms_at_1_per_core() {
        // §IV-D: even after lb, the busiest thread handles 2 atoms in the
        // 1 atom/core case (node totals fluctuate above 48).
        let node_atoms = 53u32; // a node slightly over the 48 average
        assert_eq!(lb_busiest_thread_atoms(node_atoms), 2);
    }
}
