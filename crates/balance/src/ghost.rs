//! Ghost-region memory overhead of the load-balanced layout —
//! equations (1) and (2) of the paper.
//!
//! With sub-box side `a`, cutoff `r` and unit density:
//!
//! ```text
//! nghost_bs = (a + 2r)³ − a³                      (eq. 1, per-rank halo)
//! nghost_lb = (2a + 2r)²·(a + 2r) − a³            (eq. 2, node-box halo)
//! ```
//!
//! At the strong-scaling point `a = r/2` the load-balanced halo is ≈1.44×
//! the baseline one — a few dozen kilobytes, which §IV-B shows is invisible
//! next to the NoC bandwidth.

/// Equation (1): ghost atoms of a single rank's sub-box (unit density).
pub fn nghost_baseline(a: f64, r: f64) -> f64 {
    let side = a + 2.0 * r;
    side * side * side - a * a * a
}

/// Equation (2): ghost atoms a rank must hold under the node-box layout
/// (the node-box is 2a × 2a × a).
pub fn nghost_loadbalance(a: f64, r: f64) -> f64 {
    let wide = 2.0 * a + 2.0 * r;
    let thin = a + 2.0 * r;
    wide * wide * thin - a * a * a
}

/// The overhead ratio `nghost_lb / nghost_bs`.
pub fn overhead_ratio(a: f64, r: f64) -> f64 {
    nghost_loadbalance(a, r) / nghost_baseline(a, r)
}

/// Extra memory in bytes for the load-balanced layout at atom density
/// `rho` (atoms/Å³) and `bytes_per_atom` of per-ghost state.
pub fn extra_bytes(a: f64, r: f64, rho: f64, bytes_per_atom: usize) -> f64 {
    (nghost_loadbalance(a, r) - nghost_baseline(a, r)) * rho * bytes_per_atom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratio_at_half_cutoff() {
        // §III-C: "considering the case where a = 0.5r, the number of
        // nghost in our load-balance approach is approximately 1.44 times
        // that of the original one."
        let r = 8.0;
        let ratio = overhead_ratio(0.5 * r, r);
        assert!((ratio - 1.44).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn equations_match_hand_expansion() {
        let (a, r) = (3.0, 8.0);
        assert!((nghost_baseline(a, r) - ((a + 16.0).powi(3) - 27.0)).abs() < 1e-9);
        assert!(
            (nghost_loadbalance(a, r) - ((2.0 * a + 16.0).powi(2) * (a + 16.0) - 27.0)).abs() < 1e-9
        );
    }

    #[test]
    fn overhead_ratio_grows_with_subbox_size() {
        // The node-box layout additionally stores the three sibling ranks'
        // locals (≈3a³), so its *relative* overhead grows with a — which is
        // exactly why the paper only deploys it in the strong-scaling
        // regime where a ≤ r/2 keeps the ratio near 1.44.
        let r = 8.0;
        let strong = overhead_ratio(0.5 * r, r);
        let weak = overhead_ratio(4.0 * r, r);
        assert!(weak > strong, "{weak} vs {strong}");
        assert!(strong < 1.5, "strong-scaling overhead stays small");
    }

    #[test]
    fn extra_memory_is_kilobytes_at_strong_scaling() {
        // Paper: "the additional atoms we introduce only add a few dozen
        // kilobytes". Copper density 0.0848 atoms/Å³, 32 B/ghost, a = 4 Å,
        // r = 8 Å.
        let bytes = extra_bytes(4.0, 8.0, 0.0848, 32);
        assert!(bytes > 1_000.0 && bytes < 100_000.0, "extra {bytes} B");
    }
}
