//! Distribution statistics: the SDMR metric and min/avg/max summaries of
//! Table III.

/// Standard deviation to mean ratio, in percent: `σ/μ × 100`.
///
/// The paper's load-balance metric ("the higher the SDMR value, the greater
/// the volatility"). Returns 0 for empty or zero-mean data.
pub fn sdmr(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if mean.abs() < 1e-300 {
        return 0.0;
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt() / mean * 100.0
}

/// Min / average / max / SDMR of a sample — one row of Table III.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// Mean.
    pub avg: f64,
    /// Largest value.
    pub max: f64,
    /// SDMR, percent.
    pub sdmr: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// On an empty sample.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = xs.iter().sum::<f64>() / xs.len() as f64;
        Summary { min, avg, max, sdmr: sdmr(xs) }
    }

    /// Summarize integer counts (Table III's `natom` rows).
    pub fn of_counts(xs: &[u32]) -> Summary {
        let v: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
        Summary::of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdmr_of_constant_sample_is_zero() {
        assert_eq!(sdmr(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(sdmr(&[]), 0.0);
    }

    #[test]
    fn sdmr_known_value() {
        // Sample {2, 4}: mean 3, σ = 1 (population), SDMR = 33.33%.
        let v = sdmr(&[2.0, 4.0]);
        assert!((v - 100.0 / 3.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn summary_of_table_like_counts() {
        // Paper Table III, 1 atom/core without lb: natom min 7, avg 11.625,
        // max 18, SDMR 79.93% — check our metric reproduces the *avg* and
        // that a spread like that yields a large SDMR.
        let counts = [7u32, 8, 9, 10, 11, 12, 18, 18];
        let s = Summary::of_counts(&counts);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 18.0);
        assert!((s.avg - 11.625).abs() < 1e-9);
        assert!(s.sdmr > 25.0);
    }

    #[test]
    fn tighter_distribution_has_smaller_sdmr() {
        let loose = [7.0, 18.0, 9.0, 12.0];
        let tight = [11.0, 12.0, 11.0, 12.0];
        assert!(sdmr(&tight) < sdmr(&loose));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_rejected() {
        let _ = Summary::of(&[]);
    }
}
