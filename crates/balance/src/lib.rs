//! # dpmd-balance — intra-node load balance (paper §III-C)
//!
//! At the strong-scaling limit (~1 atom/core) the per-rank atom counts of a
//! uniform-density system still fluctuate wildly because each sub-box is
//! tiny. The paper pools the four ranks of a node ("node-box") and splits
//! the pooled atoms evenly across the node's 48 threads. This crate
//! implements:
//!
//! * [`stats`] — min/avg/max and the SDMR metric (standard deviation to
//!   mean ratio) used throughout Table III;
//! * [`assign`] — the two assignment policies (per-rank sub-box ownership
//!   vs node-box even split) down to thread granularity;
//! * [`pair_time`] — the pair-phase time model (atom-by-atom evaluation:
//!   a rank is as slow as its busiest thread);
//! * [`ghost`] — the memory-overhead analysis, equations (1) and (2);
//! * [`rank_lb`] — LAMMPS' border-shifting balancer, implemented so the
//!   paper's "limited assistance for systems with uniform density" claim
//!   is measurable against the node-box pooling.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub mod assign;
pub mod ghost;
pub mod pair_time;
pub mod rank_lb;
pub mod stats;

pub use assign::{lb_rank_loads, nolb_rank_loads};
pub use stats::{sdmr, Summary};
