//! # dpmd-repro
//!
//! Umbrella crate of the reproduction of *"Scaling Molecular Dynamics with
//! ab initio Accuracy to 149 Nanoseconds per Day"* (SC 2024). Re-exports
//! the whole workspace; see the individual crates for details:
//!
//! * [`nnet`] — neural-network substrate (f16, GEMMs, graph vs direct);
//! * [`minimd`] — the LAMMPS substrate (atoms, lists, potentials, domains);
//! * [`fugaku`] — the machine model (A64FX, TofuD, TNIs, event simulator);
//! * [`deepmd`] — the Deep Potential model (descriptor → forces, training);
//! * [`comm`] — communication schemes (3-stage, p2p, node-based, mempool);
//! * [`balance`] — intra-node load balancing;
//! * [`obs`] — observability (metrics registry, span tracing, Chrome-trace
//!   export; recording is live only with the `capture` feature);
//! * [`scaling`] — time-to-solution model and per-figure experiments;
//! * [`core`] — the public engine/performance API.
//!
//! Quickstart: `cargo run --release --example quickstart`.

// Enforced workspace-wide (dpmd-analyze rule D3 audits the exception
// in dpmd-threads); everything else is safe Rust by construction.
#![forbid(unsafe_code)]

pub use deepmd;
pub use dpmd_balance as balance;
pub use dpmd_comm as comm;
pub use dpmd_core as core;
pub use dpmd_obs as obs;
pub use dpmd_scaling as scaling;
pub use fugaku;
pub use minimd;
pub use nnet;

/// Crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The paper's headline result, for reference in docs and sanity tests.
pub mod headline {
    /// Copper ns/day on 12,000 nodes (paper Table I / Fig. 11).
    pub const PAPER_CU_NSDAY: f64 = 149.0;
    /// Water ns/day on 12,000 nodes.
    pub const PAPER_H2O_NSDAY: f64 = 68.5;
    /// Copper speedup over the Fugaku baseline.
    pub const PAPER_CU_SPEEDUP: f64 = 31.7;
    /// Water speedup.
    pub const PAPER_H2O_SPEEDUP: f64 = 32.6;
    /// Parallel efficiency at 12,000 nodes (copper, water).
    pub const PAPER_EFFICIENCY: (f64, f64) = (0.623, 0.579);
}
