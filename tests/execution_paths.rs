//! Cross-crate integration: the three execution paths of the fitting net —
//! the TensorFlow-like graph runtime (baseline), the reference layer
//! implementation, and the direct executor (rmtf) — must agree numerically
//! while exhibiting the overhead structure the paper measures.

use std::collections::HashMap;

use dpmd_repro::nnet::activation::Activation;
use dpmd_repro::nnet::direct::DirectMlp;
use dpmd_repro::nnet::graph::{Graph, Op, Session, SESSION_FIXED_OVERHEAD_NS};
use dpmd_repro::nnet::init::build_mlp;
use dpmd_repro::nnet::layers::Mlp;
use dpmd_repro::nnet::matrix::Matrix;

/// Build the forward graph of an MLP in the graph runtime (no resnet — the
/// graph path mirrors the baseline's plain dataflow for this test).
fn mlp_graph(mlp: &Mlp) -> (Graph, dpmd_repro::nnet::graph::NodeId, dpmd_repro::nnet::graph::NodeId) {
    let mut g = Graph::new();
    let x = g.input("x");
    let mut cur = x;
    for layer in &mlp.layers {
        let w = g.param(layer.w.clone());
        let b = g.param(Matrix::from_vec(1, layer.b.len(), layer.b.clone()));
        let mm = g.add(Op::MatMulNN(cur, w));
        let ab = g.add(Op::AddBias(mm, b));
        cur = g.add(Op::Activation(ab, layer.act));
    }
    let loss = g.add(Op::SumAll(cur));
    (g, cur, loss)
}

#[test]
fn graph_layers_and_direct_agree_bitwise_on_the_fitting_net_shape() {
    // A fitting-net-shaped MLP (narrow for test speed), no skips.
    let mut mlp = build_mlp(16, &[24, 24, 24], 1, Activation::Tanh, 99);
    for layer in &mut mlp.layers {
        layer.resnet = dpmd_repro::nnet::layers::Resnet::None;
    }
    let x = Matrix::from_fn(2, 16, |r, c| 0.05 * (r as f64 + 1.0) * ((c % 5) as f64 - 2.0));

    // Reference path.
    let reference = mlp.forward_infer(&x);
    // Graph path.
    let (g, out, _) = mlp_graph(&mlp);
    let mut sess = Session::new(g);
    let feeds: HashMap<String, Matrix<f64>> = [("x".to_string(), x.clone())].into();
    let (outs, stats) = sess.run(&feeds, &[out]);
    // Direct path.
    let mut direct = DirectMlp::compile(&mlp, 4);
    let dout = direct.forward(x.as_slice(), 2);

    for r in 0..2 {
        assert_eq!(reference[(r, 0)], outs[0][(r, 0)], "graph row {r}");
        assert!((reference[(r, 0)] - dout[r]).abs() < 1e-12, "direct row {r}");
    }
    // The overhead structure the paper measures: a fixed 4 ms per session
    // run on the graph path, none on the direct path.
    assert_eq!(stats.framework_overhead_ns, SESSION_FIXED_OVERHEAD_NS);
    assert!(stats.tensors_allocated > 0, "graph allocates every intermediate");
    let allocs0 = direct.stats().allocations;
    direct.forward(x.as_slice(), 2);
    assert_eq!(direct.stats().allocations, allocs0, "direct path steady state is alloc-free");
}

#[test]
fn graph_autodiff_matches_direct_backward() {
    let mut mlp = build_mlp(6, &[10, 10], 1, Activation::Tanh, 123);
    for layer in &mut mlp.layers {
        layer.resnet = dpmd_repro::nnet::layers::Resnet::None;
    }
    let x = Matrix::from_fn(1, 6, |_, c| 0.1 * (c as f64 - 2.5));

    // Graph gradient (the baseline's materialized backward kernels).
    let (mut g, _out, loss) = mlp_graph(&mlp);
    let kernels_fwd = g.kernel_count();
    let grads = g.gradients(loss, &[dpmd_repro::nnet::graph::NodeId(0)]);
    let kernels_total = g.kernel_count();
    assert!(kernels_total > kernels_fwd, "backward adds kernels");
    let mut sess = Session::new(g);
    let feeds: HashMap<String, Matrix<f64>> = [("x".to_string(), x.clone())].into();
    let (outs, _) = sess.run(&feeds, &[grads[0]]);

    // Direct backward (NT→NN preconverted).
    let mut direct = DirectMlp::compile(&mlp, 1);
    direct.forward(x.as_slice(), 1);
    let dx = direct.backward_input(1, &[1.0]);

    for c in 0..6 {
        assert!(
            (outs[0][(0, c)] - dx[c]).abs() < 1e-12,
            "grad[{c}]: graph {} vs direct {}",
            outs[0][(0, c)],
            dx[c]
        );
    }
}

#[test]
fn session_overhead_dominates_at_strong_scaling_workloads() {
    // One or two atoms per thread: the compute content of a session run is
    // tiny next to the 4 ms framework overhead — the paper's §III-B1
    // motivation for removing TensorFlow.
    let mlp = build_mlp(16, &[24, 24], 1, Activation::Tanh, 7);
    let (g, out, _) = mlp_graph(&mlp);
    let mut sess = Session::new(g);
    let x = Matrix::from_fn(1, 16, |_, c| 0.01 * c as f64);
    let feeds: HashMap<String, Matrix<f64>> = [("x".to_string(), x)].into();
    let (_, stats) = sess.run(&feeds, &[out]);
    // Even generously assuming 1 ns per FLOP-equivalent kernel work, the
    // fixed overhead exceeds it by orders of magnitude.
    assert!(stats.framework_overhead_ns > 100 * stats.matmul_flops);
}
