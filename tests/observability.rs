//! Cross-crate invariant suite for the observability layer (`dpmd-obs`).
//!
//! Four families, per the observability issue:
//!
//! 1. **Accounting invariants** — `comm.bytes_sent` must equal the sum of
//!    serialized message sizes of the canonical exchange, for both schemes;
//!    node-based and p2p must report identical *logical* ghost counts.
//! 2. **Property tests** — histogram bucket counts sum to the sample count;
//!    snapshots round-trip through JSON bit-exactly; well-nested span
//!    forests validate and children never outlast parents.
//! 3. **Golden snapshot** — a fixed-seed 10-step copper run produces a
//!    bit-identical deterministic metrics JSON (`tests/golden/`, refresh
//!    with `DPMD_BLESS=1`).
//! 4. **Machine-model counters** — the node-based scheme charges TNI
//!    routing and simulated RDMA bytes.
//!
//! The root package's dev-dependencies enable the `capture` feature, so
//! these tests see live recording; each capture-dependent test still guards
//! on `MetricsRegistry::is_enabled()` so the suite stays correct if run
//! with default features.

use dpmd_repro::comm::functional::{
    self, build_forward_messages, exchange_ghosts_observed, ghost_signature, ExchangeScheme,
};
use dpmd_repro::comm::node_based::{simulate_observed, Phase};
use dpmd_repro::comm::{CommMetrics, HaloPlan, NodeSchemeConfig, ATOM_FORWARD_BYTES};
use dpmd_repro::core::prelude::*;
use dpmd_repro::fugaku::machine::MachineConfig;
use dpmd_repro::fugaku::tofu::Torus3d;
use dpmd_repro::minimd::domain::Decomposition;
use dpmd_repro::minimd::lattice::{fcc_copper, fcc_lattice};
use dpmd_repro::minimd::simbox::SimBox;
use dpmd_repro::minimd::Atoms;
use dpmd_repro::obs::trace::validate_well_nested;
use dpmd_repro::obs::{
    HistogramSnapshot, MetricsRegistry, ScalarMetric, Snapshot, TraceBuffer, TraceEvent, Unit,
};

use proptest::collection::vec;
use proptest::prelude::*;

const RC: f64 = 6.0;

/// A copper box decomposed over 2×2×2 ranks, subdomains comfortably wider
/// than the cutoff, pre-exchange (no ghosts yet).
fn partitioned_copper() -> (Decomposition, Vec<Atoms>) {
    let (bx, atoms) = fcc_copper(6, 6, 6);
    let decomp = Decomposition::new(bx, [2, 2, 2]);
    let per_rank = functional::partition(&decomp, &atoms);
    (decomp, per_rank)
}

// ---------------------------------------------------------------------------
// 1. Accounting invariants
// ---------------------------------------------------------------------------

/// `comm.bytes_sent` must equal the serialized size of the canonical
/// forward message set — independently recomputed here from
/// `build_forward_messages` — and the per-edge counters must partition it.
#[test]
fn comm_bytes_sent_equals_serialized_message_sizes_for_both_schemes() {
    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let (decomp, mut per_rank) = partitioned_copper();

        // Expected traffic, recomputed from the same pre-exchange state.
        let messages = build_forward_messages(&decomp, &per_rank, RC, scheme, false);
        let expected_msgs = messages.len() as u64;
        let expected_entries: u64 = messages.iter().map(|m| m.payload.len() as u64).sum();
        let expected_bytes = expected_entries * ATOM_FORWARD_BYTES as u64;
        assert!(expected_msgs > 0, "{scheme:?}: degenerate fixture, no halo traffic");

        let reg = MetricsRegistry::new();
        let obs = CommMetrics::register(&reg);
        exchange_ghosts_observed(&decomp, &mut per_rank, RC, scheme, false, &obs);

        if !reg.is_enabled() {
            return;
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("comm.messages_sent"), Some(expected_msgs), "{scheme:?}");
        assert_eq!(snap.counter("comm.payload_entries"), Some(expected_entries), "{scheme:?}");
        assert_eq!(snap.counter("comm.bytes_sent"), Some(expected_bytes), "{scheme:?}");
        // Per-edge bytes are a partition of the total.
        assert_eq!(snap.counter_prefix_sum("comm.edge."), expected_bytes, "{scheme:?}");
        // The per-scheme split charges exactly this scheme.
        let (hit, miss) = match scheme {
            ExchangeScheme::RankP2p => ("comm.scheme.p2p.messages", "comm.scheme.node.messages"),
            ExchangeScheme::NodeBased => ("comm.scheme.node.messages", "comm.scheme.p2p.messages"),
        };
        assert_eq!(snap.counter(hit), Some(expected_msgs), "{scheme:?}");
        assert_eq!(snap.counter(miss), Some(0), "{scheme:?}");
    }
}

/// Node-based and rank-p2p are different *transports* for the same logical
/// exchange: both must apply the identical ghost set, and the
/// `comm.ghosts_applied` counters must agree.
#[test]
fn node_based_and_p2p_report_identical_logical_ghost_counts() {
    let mut applied = Vec::new();
    let mut signatures = Vec::new();
    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let (decomp, mut per_rank) = partitioned_copper();
        let reg = MetricsRegistry::new();
        let obs = CommMetrics::register(&reg);
        exchange_ghosts_observed(&decomp, &mut per_rank, RC, scheme, false, &obs);

        let ghosts: usize = per_rank.iter().map(|a| a.len() - a.nlocal).sum();
        assert!(ghosts > 0, "{scheme:?}: exchange applied no ghosts");
        if reg.is_enabled() {
            assert_eq!(
                reg.snapshot().counter("comm.ghosts_applied"),
                Some(ghosts as u64),
                "{scheme:?}: counter disagrees with the simulation state it observed"
            );
        }
        applied.push(ghosts);
        signatures.push(
            per_rank
                .iter()
                .map(|a| {
                    let mut sig = ghost_signature(a);
                    sig.sort_unstable();
                    sig
                })
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(applied[0], applied[1], "schemes applied different ghost counts");
    assert_eq!(signatures[0], signatures[1], "schemes applied different ghost sets");
}

// ---------------------------------------------------------------------------
// 2. Property tests
// ---------------------------------------------------------------------------

proptest! {
    /// Every recorded sample lands in exactly one bucket: the per-bucket
    /// counts of a histogram always sum to the number of samples, whatever
    /// the values and whatever the (ascending) bounds.
    #[test]
    fn histogram_bucket_counts_sum_to_sample_count(
        samples in vec(0u64..2_000, 0..64),
        b0 in 1u64..100,
        step in 1u64..500,
    ) {
        let reg = MetricsRegistry::new();
        if !reg.is_enabled() {
            return Ok(());
        }
        let bounds = [b0, b0 + step, b0 + 2 * step, b0 + 3 * step];
        let h = reg.histogram("prop.h", Unit::Count, &bounds);
        for &s in &samples {
            h.record(s);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("prop.h").expect("histogram must appear in snapshot");
        prop_assert_eq!(hs.counts.len(), bounds.len() + 1);
        prop_assert_eq!(hs.total(), samples.len() as u64);
    }

    /// A snapshot survives a JSON round-trip bit-exactly (`to_json` →
    /// `from_json` → `==`), including histograms and every unit kind.
    #[test]
    fn snapshot_round_trips_through_json(
        values in vec(0u64..u64::MAX / 2, 1..12),
        counts in vec(0u64..1_000, 4..5),
    ) {
        let units = [Unit::Count, Unit::Bytes, Unit::Ns, Unit::WallNs];
        let snap = Snapshot {
            counters: values
                .iter()
                .enumerate()
                .map(|(i, &v)| ScalarMetric {
                    name: format!("prop.c{i:02}"),
                    unit: units[i % units.len()],
                    value: v,
                })
                .collect(),
            gauges: values
                .iter()
                .enumerate()
                .map(|(i, &v)| ScalarMetric {
                    name: format!("prop.g{i:02}"),
                    unit: units[(i + 1) % units.len()],
                    value: v,
                })
                .collect(),
            histograms: vec![HistogramSnapshot {
                name: "prop.h".to_string(),
                unit: Unit::Ns,
                bounds: vec![1, 8, 64],
                counts: counts.clone(),
            }],
        };
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).map_err(|e| {
            proptest::TestCaseError::Fail(format!("from_json failed: {e}"))
        })?;
        prop_assert_eq!(&back, &snap);
        // And the re-serialization is bit-identical (canonical form).
        prop_assert_eq!(back.to_json(), json);
    }

    /// Constructively well-nested span forests always validate, and no
    /// child span outlasts its parent (duration monotone down the tree).
    #[test]
    fn well_nested_span_forests_validate_and_durations_are_monotone(
        roots in vec((0u64..1_000, 1u64..1_000), 1..6),
        depth in 1usize..5,
        shrink in 1u64..10,
    ) {
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut cursor = 0u64;
        for &(gap, dur) in &roots {
            let start = cursor + gap;
            // A chain of children, each strictly inside its parent.
            let mut s = start;
            let mut d = dur;
            let mut parent_dur = None;
            for _ in 0..depth {
                events.push(TraceEvent { name: "span", tid: 0, ts_ns: s, dur_ns: d });
                if let Some(pd) = parent_dur {
                    prop_assert!(d <= pd, "child span outlasts its parent");
                }
                parent_dur = Some(d);
                if d <= 2 * shrink {
                    break;
                }
                s += shrink;
                d -= 2 * shrink;
            }
            cursor = start + dur; // next root starts after this one ends
        }
        prop_assert!(validate_well_nested(&events).is_ok());
        // Sibling roots on different lanes may overlap freely.
        for (i, e) in events.iter_mut().enumerate() {
            e.tid = i as u64;
            e.ts_ns = 0;
        }
        prop_assert!(validate_well_nested(&events).is_ok());
    }
}

/// The validator is not a tautology: a partial overlap on one lane fails.
#[test]
fn partially_overlapping_spans_are_rejected() {
    let a = TraceEvent { name: "a", tid: 0, ts_ns: 0, dur_ns: 60 };
    let b = TraceEvent { name: "b", tid: 0, ts_ns: 30, dur_ns: 60 };
    assert!(validate_well_nested(&[a, b]).is_err());
}

// ---------------------------------------------------------------------------
// 3. Golden snapshot
// ---------------------------------------------------------------------------

/// A fixed-seed 10-step copper run must reproduce the checked-in metrics
/// snapshot **bit-identically** (wall-clock metrics are excluded by
/// `snapshot_deterministic`). Refresh after an intentional metric change
/// with `DPMD_BLESS=1 cargo test --test observability golden`.
#[test]
fn golden_metrics_snapshot_cu10() {
    let registry = MetricsRegistry::new();
    if !registry.is_enabled() {
        return;
    }
    let trace = TraceBuffer::new();
    let mut engine = Engine::builder()
        .copper_cells(2)
        .with_model(DeepPotModel::new(DeepPotConfig::tiny(1, 6.0)))
        .precision(Precision::Mix16)
        .nve()
        .seed(7)
        .threads(2)
        .observe(registry.clone(), trace.clone())
        .build();
    engine.run(10);

    // The GEMM dispatch counter is named for the machine's kernel class
    // (`nnet.gemm.dispatch.{scalar|avx2|neon}.calls`); normalize the tag so
    // one golden file serves every class. The counter *values* are
    // class-independent — dispatch changes arithmetic, never call structure.
    let tag = dpmd_repro::nnet::gemm::dispatch::active_class().tag();
    let json = registry
        .snapshot_deterministic()
        .to_json()
        .replace(&format!("nnet.gemm.dispatch.{tag}."), "nnet.gemm.dispatch.CLASS.");
    let path = golden_path();
    if std::env::var("DPMD_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with DPMD_BLESS=1 to create it", path.display())
    });
    assert_eq!(
        json,
        golden,
        "metrics snapshot drifted from {}; if intentional, re-bless with DPMD_BLESS=1",
        path.display()
    );

    // The trace that accompanied the run is schema-valid and well-nested
    // per lane (the golden file cannot cover it: spans carry wall time).
    dpmd_repro::obs::schema::validate_trace_json(&trace.to_chrome_json())
        .expect("trace fails its own schema");
    validate_well_nested(&trace.events()).expect("step span tree is not well-nested");
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_cu10.json")
}

// ---------------------------------------------------------------------------
// 4. Machine-model counters (TNI routing, simulated RDMA)
// ---------------------------------------------------------------------------

/// The node-based scheme must charge its message-to-RDMA-engine routing
/// (`fugaku.tniN.messages`) and the bytes injected into the timing model
/// (`fugaku.rdma.bytes_simulated`).
#[test]
fn node_scheme_charges_tni_routing_and_simulated_rdma_bytes() {
    let reg = MetricsRegistry::new();
    if !reg.is_enabled() {
        return;
    }

    // Same fixture family as the node_based unit tests: a 3×3×4 torus of
    // nodes with subdomain edges at half the cutoff.
    let nodes = [3usize, 3, 4];
    let rc = 8.0;
    let edge = 0.5 * rc;
    let bx = SimBox::new(
        edge * 2.0 * nodes[0] as f64,
        edge * 2.0 * nodes[1] as f64,
        edge * nodes[2] as f64,
    );
    let cells = [
        (bx.lengths().x / 3.615).round().max(1.0) as usize,
        (bx.lengths().y / 3.615).round().max(1.0) as usize,
        (bx.lengths().z / 3.615).round().max(1.0) as usize,
    ];
    let (_, mut atoms) = fcc_lattice(cells[0], cells[1], cells[2], 3.615);
    let sx = bx.lengths().x / (cells[0] as f64 * 3.615);
    let sy = bx.lengths().y / (cells[1] as f64 * 3.615);
    let sz = bx.lengths().z / (cells[2] as f64 * 3.615);
    for p in &mut atoms.pos {
        p.x *= sx;
        p.y *= sy;
        p.z *= sz;
        *p = bx.wrap(*p);
    }
    let decomp = Decomposition::new(bx, nodes);
    let torus = Torus3d::new(nodes);
    let machine = MachineConfig::default();
    let plan = HaloPlan::build(&decomp, &atoms, rc);
    let apr: Vec<usize> =
        decomp.counts_per_rank(&atoms).into_iter().map(|c| c as usize).collect();

    let obs = CommMetrics::register(&reg);
    let result = simulate_observed(
        &machine,
        &decomp,
        &torus,
        &plan,
        &apr,
        NodeSchemeConfig::paper_best(),
        Phase::Forward,
        &obs,
    );
    assert!(result.comm.total_ns > 0, "degenerate node-scheme run");

    let snap = reg.snapshot();
    let tni_messages = snap.counter_prefix_sum("fugaku.tni");
    assert!(tni_messages > 0, "no messages charged to any TNI");
    let rdma = snap.counter("fugaku.rdma.bytes_simulated");
    assert!(rdma.unwrap_or(0) > 0, "no simulated RDMA bytes charged: {rdma:?}");
}
