//! The full stack end to end: a *Deep Potential* driven distributed MD run
//! (node-based exchange, Newton-on reverse reduction, flying-atom
//! migration) against the single-box reference — the strongest correctness
//! statement this repository makes about the paper's communication scheme.

use dpmd_repro::comm::driver::DistributedSim;
use dpmd_repro::comm::functional::ExchangeScheme;
use dpmd_repro::deepmd::config::DeepPotConfig;
use dpmd_repro::deepmd::model::DeepPotModel;
use dpmd_repro::minimd::domain::Decomposition;
use dpmd_repro::minimd::integrate::{init_velocities, VelocityVerlet};
use dpmd_repro::minimd::lattice::fcc_lattice;
use dpmd_repro::minimd::sim::Simulation;
use dpmd_repro::minimd::units::FEMTOSECOND;

#[test]
fn deep_potential_distributed_trajectory_matches_single_box() {
    let (bx, mut global) = fcc_lattice(9, 9, 9, 4.0);
    init_velocities(&mut global, 120.0, 21);
    let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
    let vv = VelocityVerlet::new(1.0 * FEMTOSECOND);

    let mut reference =
        Simulation::new(bx, global.clone(), Box::new(model.clone()), vv.clone(), 1.0, 5);
    let decomp = Decomposition::new(bx, [2, 2, 2]);
    let mut dist = DistributedSim::new(decomp, &global, &model, vv, ExchangeScheme::NodeBased, 5);

    for _ in 0..12 {
        reference.step();
        dist.stride();
    }
    let gathered = dist.gather();
    let mut by_id = std::collections::HashMap::new();
    for i in 0..reference.atoms.nlocal {
        by_id.insert(reference.atoms.id[i], reference.atoms.pos[i]);
    }
    let mut worst = 0.0f64;
    for i in 0..gathered.nlocal {
        let d = bx.min_image(gathered.pos[i], by_id[&gathered.id[i]]).norm();
        worst = worst.max(d);
    }
    assert!(worst < 1e-8, "max trajectory deviation {worst} Å after 12 steps");
}

#[test]
fn deep_potential_distributed_energy_is_conserved() {
    let (bx, mut global) = fcc_lattice(8, 8, 8, 4.0);
    init_velocities(&mut global, 80.0, 33);
    let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
    let vv = VelocityVerlet::new(1.0 * FEMTOSECOND);
    let decomp = Decomposition::new(bx, [2, 2, 2]);
    let mut dist = DistributedSim::new(decomp, &global, &model, vv, ExchangeScheme::NodeBased, 5);
    let (pe0, ke0) = dist.stride();
    let mut last = (pe0, ke0);
    for _ in 0..15 {
        last = dist.stride();
    }
    let natoms = global.nlocal as f64;
    let drift = ((last.0 + last.1) - (pe0 + ke0)).abs() / natoms;
    assert!(drift < 5e-4, "per-atom energy drift {drift} eV");
}
