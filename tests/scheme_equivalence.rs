//! Cross-crate integration: every communication scheme must deliver ghost
//! sets that make the *Deep Potential* forces computed per rank equal the
//! global single-box reference — the invariant that makes the paper's
//! node-based optimization legal physics.

use std::collections::HashMap;

use dpmd_repro::comm::functional::{
    exchange_ghosts, ghost_signature, partition, reverse_forces, ExchangeScheme,
};
use dpmd_repro::deepmd::config::DeepPotConfig;
use dpmd_repro::deepmd::model::DeepPotModel;
use dpmd_repro::minimd::domain::Decomposition;
use dpmd_repro::minimd::lattice::fcc_lattice;
use dpmd_repro::minimd::neighbor::{ListKind, NeighborList};
use dpmd_repro::minimd::vec3::Vec3;

fn setup() -> (Decomposition, dpmd_repro::minimd::Atoms, dpmd_repro::minimd::SimBox, DeepPotModel) {
    let (bx, mut atoms) = fcc_lattice(10, 10, 10, 3.615);
    // Perturb so forces are non-trivial.
    for (k, p) in atoms.pos.iter_mut().enumerate() {
        p.x += 0.06 * ((k % 7) as f64 - 3.0) / 3.0;
        p.y += 0.05 * ((k % 5) as f64 - 2.0) / 2.0;
        *p = bx.wrap(*p);
    }
    let decomp = Decomposition::new(bx, [3, 3, 4]);
    let model = DeepPotModel::new(DeepPotConfig::tiny(1, 5.0));
    (decomp, atoms, bx, model)
}

#[test]
fn all_schemes_and_layouts_deliver_equivalent_ghosts() {
    let (decomp, atoms, _, _) = setup();
    let mut p2p = partition(&decomp, &atoms);
    let mut node = partition(&decomp, &atoms);
    exchange_ghosts(&decomp, &mut p2p, 5.0, ExchangeScheme::RankP2p, false);
    exchange_ghosts(&decomp, &mut node, 5.0, ExchangeScheme::NodeBased, false);
    for r in 0..decomp.num_ranks() {
        assert_eq!(ghost_signature(&p2p[r]), ghost_signature(&node[r]), "rank {r}");
    }
}

#[test]
fn deep_potential_forces_are_identical_distributed_and_global() {
    let (decomp, mut global, bx, model) = setup();

    // Global reference.
    let mut nl = NeighborList::new(model.config.rcut, 0.0, ListKind::Full);
    nl.build(&global, &bx);
    let mut ref_forces = vec![Vec3::ZERO; global.len()];
    let ref_out = model.energy_forces(&global, &nl, &bx, &mut ref_forces);
    let mut by_id: HashMap<u64, Vec3> = HashMap::new();
    for (&id, &f) in global.id.iter().zip(&ref_forces).take(global.nlocal) {
        by_id.insert(id, f);
    }
    let _ = &mut global;

    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let mut per_rank = partition(&decomp, &global);
        exchange_ghosts(&decomp, &mut per_rank, model.config.rcut, scheme, false);
        let mut dist_energy = 0.0;
        for a in per_rank.iter_mut() {
            let mut rnl = NeighborList::new(model.config.rcut, 0.0, ListKind::Full);
            rnl.build(a, &bx);
            a.zero_forces();
            let mut forces = std::mem::take(&mut a.force);
            let out = model.energy_forces(a, &rnl, &bx, &mut forces);
            a.force = forces;
            dist_energy += out.energy;
        }
        // Newton's law on: ghost forces reduce back to their owners.
        reverse_forces(&decomp, &mut per_rank);

        assert!(
            (dist_energy - ref_out.energy).abs() < 1e-8 * ref_out.energy.abs().max(1.0),
            "{scheme:?}: energy {dist_energy} vs {}",
            ref_out.energy
        );
        for a in &per_rank {
            for i in 0..a.nlocal {
                let rf = by_id[&a.id[i]];
                assert!(
                    (a.force[i] - rf).norm() < 1e-9,
                    "{scheme:?}: atom {} force {:?} vs {rf:?}",
                    a.id[i],
                    a.force[i]
                );
            }
        }
    }
}

#[test]
fn lb_broadcast_layout_preserves_forces_too() {
    let (decomp, global, bx, model) = setup();
    let mut nl = NeighborList::new(model.config.rcut, 0.0, ListKind::Full);
    nl.build(&global, &bx);
    let mut ref_forces = vec![Vec3::ZERO; global.len()];
    model.energy_forces(&global, &nl, &bx, &mut ref_forces);
    let mut by_id: HashMap<u64, Vec3> = HashMap::new();
    for (&id, &f) in global.id.iter().zip(&ref_forces).take(global.nlocal) {
        by_id.insert(id, f);
    }

    // The Fig. 5(b) layout: every rank holds the whole node-box.
    let mut per_rank = partition(&decomp, &global);
    exchange_ghosts(&decomp, &mut per_rank, model.config.rcut, ExchangeScheme::NodeBased, true);
    for a in per_rank.iter_mut() {
        let mut rnl = NeighborList::new(model.config.rcut, 0.0, ListKind::Full);
        rnl.build(a, &bx);
        a.zero_forces();
        let mut forces = std::mem::take(&mut a.force);
        model.energy_forces(a, &rnl, &bx, &mut forces);
        a.force = forces;
    }
    reverse_forces(&decomp, &mut per_rank);
    for a in &per_rank {
        for i in 0..a.nlocal {
            let rf = by_id[&a.id[i]];
            assert!((a.force[i] - rf).norm() < 1e-9, "atom {}", a.id[i]);
        }
    }
}
