//! Chaos suite for the distributed exchange (extends the
//! `scheme_equivalence` pattern to a hostile network): with drops,
//! duplicates, reorders, delays and a stalled leader rank injected — and
//! recovery enabled — a 12-step `DistributedSim` run must produce a
//! trajectory **bit-identical** to the unfaulted run, for every
//! `ExchangeScheme`; and the same `(seed, step, edge)` fault spec must
//! replay identically across two consecutive runs.
//!
//! The fault seed comes from `DPMD_FAULT_SEED` (default 7) so CI can sweep
//! scenarios without touching the code.

use dpmd_repro::comm::driver::DistributedSim;
use dpmd_repro::comm::fault::{FaultPlan, FaultStats};
use dpmd_repro::comm::functional::ExchangeScheme;
use dpmd_repro::minimd::domain::Decomposition;
use dpmd_repro::minimd::integrate::{init_velocities, VelocityVerlet};
use dpmd_repro::minimd::lattice::fcc_lattice;
use dpmd_repro::minimd::potential::lj::LennardJones;
use dpmd_repro::minimd::units::FEMTOSECOND;
use dpmd_repro::minimd::Atoms;

const STEPS: u64 = 12;

fn fault_seed() -> u64 {
    std::env::var("DPMD_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7)
}

/// The acceptance scenario: drop + duplicate + reorder + delay, plus one
/// stalled leader for steps 3–6.
fn hostile_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::parse(&format!(
        "seed={seed};drop=0.15;dup=0.1;reorder=0.3;delay=0.1:2;stall-leader=0@3+4"
    ))
    .expect("spec must parse");
    plan.backoff_base_ns = 500;
    plan
}

/// Run the distributed LJ driver for [`STEPS`] steps, optionally faulted.
fn run(scheme: ExchangeScheme, plan: Option<FaultPlan>) -> (Atoms, Option<FaultStats>) {
    let (bx, mut global) = fcc_lattice(8, 8, 8, 4.4);
    init_velocities(&mut global, 60.0, 5);
    let lj = LennardJones::new(0.0104, 3.4, 5.0);
    let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);
    let decomp = Decomposition::new(bx, [2, 2, 2]);
    let mut sim = DistributedSim::new(decomp, &global, &lj, vv, scheme, 10);
    if let Some(p) = plan {
        sim.inject_faults(p);
    }
    for _ in 0..STEPS {
        sim.stride();
    }
    let stats = sim.fault_stats().copied();
    (sim.gather(), stats)
}

/// Bitwise trajectory comparison: ids, positions and velocities.
fn assert_bit_identical(a: &Atoms, b: &Atoms, what: &str) {
    assert_eq!(a.nlocal, b.nlocal, "{what}: atom count");
    assert_eq!(a.id, b.id, "{what}: atom ids");
    for i in 0..a.nlocal {
        for k in 0..3 {
            assert_eq!(
                a.pos[i][k].to_bits(),
                b.pos[i][k].to_bits(),
                "{what}: atom {} pos axis {k} ({} vs {})",
                a.id[i],
                a.pos[i][k],
                b.pos[i][k],
            );
            assert_eq!(
                a.vel[i][k].to_bits(),
                b.vel[i][k].to_bits(),
                "{what}: atom {} vel axis {k}",
                a.id[i],
            );
        }
    }
}

/// The acceptance criterion: for each exchange scheme, the faulted run with
/// recovery matches the fault-free run bit for bit, while the fault layer
/// demonstrably injected work to recover from.
#[test]
fn faulted_trajectories_are_bit_identical_per_scheme() {
    let seed = fault_seed();
    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let (clean, _) = run(scheme, None);
        let (faulted, stats) = run(scheme, Some(hostile_plan(seed)));
        let stats = stats.expect("faults were injected");
        assert!(
            stats.dropped > 0 && stats.duplicates_delivered > 0 && stats.reorders > 0,
            "seed {seed} {scheme:?}: scenario must actually inject faults ({stats:?})"
        );
        assert!(stats.retries > 0, "drops must force retries");
        // Ignored ≥ delivered: the dedup window also absorbs retransmits
        // that race a delayed original to the receiver.
        assert!(
            stats.duplicates_ignored >= stats.duplicates_delivered,
            "every duplicate must be discarded by the idempotent apply ({stats:?})"
        );
        assert_bit_identical(&clean, &faulted, &format!("seed {seed} {scheme:?}"));
    }
}

/// A stalled leader degrades node-based exchange to p2p for exactly the
/// stall window (steps 3–6 → 4 steps) without perturbing the trajectory;
/// the p2p scheme needs no leaders, so it never falls back.
#[test]
fn stalled_leader_falls_back_gracefully() {
    let seed = fault_seed();
    let (_, stats) = run(ExchangeScheme::NodeBased, Some(hostile_plan(seed)));
    assert_eq!(stats.unwrap().fallback_steps, 4, "stall-leader=0@3+4 covers 4 steps");
    let (_, stats) = run(ExchangeScheme::RankP2p, Some(hostile_plan(seed)));
    assert_eq!(stats.unwrap().fallback_steps, 0, "p2p has no leaders to stall");
}

/// Determinism: the same fault spec replays bit-identically across two
/// consecutive runs — same trajectory AND same counters, field for field.
#[test]
fn same_fault_spec_replays_identically() {
    let seed = fault_seed();
    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let (t1, s1) = run(scheme, Some(hostile_plan(seed)));
        let (t2, s2) = run(scheme, Some(hostile_plan(seed)));
        assert_bit_identical(&t1, &t2, &format!("replay {scheme:?}"));
        assert_eq!(s1, s2, "{scheme:?}: fault/recovery counters must replay exactly");
    }
}

/// Different seeds produce different fault streams (the spec is not inert).
#[test]
fn different_seeds_inject_different_faults() {
    let seed = fault_seed();
    let (t1, s1) = run(ExchangeScheme::NodeBased, Some(hostile_plan(seed)));
    let (t2, s2) = run(ExchangeScheme::NodeBased, Some(hostile_plan(seed.wrapping_add(1))));
    assert_ne!(s1, s2, "fault streams of different seeds should differ");
    // ... while the physics stays identical regardless of seed.
    assert_bit_identical(&t1, &t2, "trajectories under different fault seeds");
}

/// Fault-free runs of the two schemes are themselves bit-identical — the
/// invariant that makes the stalled-leader scheme swap invisible.
#[test]
fn clean_schemes_produce_bit_identical_trajectories() {
    let (p2p, _) = run(ExchangeScheme::RankP2p, None);
    let (node, _) = run(ExchangeScheme::NodeBased, None);
    assert_bit_identical(&p2p, &node, "clean p2p vs node-based");
}

/// Recovery under RDMA-pool pressure: a pool that holds only a few in-
/// flight messages forces sends to defer (never panic) and the run still
/// completes bit-identically.
#[test]
fn recovery_survives_pool_exhaustion() {
    let seed = fault_seed();
    let mut plan = FaultPlan::parse(&format!("seed={seed};delay=0.3:2;pool=60000")).unwrap();
    plan.max_retries = 32;
    let (clean, _) = run(ExchangeScheme::NodeBased, None);
    let (faulted, stats) = run(ExchangeScheme::NodeBased, Some(plan));
    let stats = stats.unwrap();
    assert!(
        stats.pool_exhausted > 0,
        "the capped pool should have deferred some sends ({stats:?})"
    );
    assert_bit_identical(&clean, &faulted, "pool pressure");
}

// ---------------------------------------------------------------------------
// Observability of the chaos suite (dpmd-obs wiring)
// ---------------------------------------------------------------------------

use dpmd_repro::obs::{MetricsRegistry, Snapshot};

/// [`run`] with a metrics registry attached, returning the full snapshot
/// alongside the trajectory state it observed.
fn run_observed(scheme: ExchangeScheme, plan: Option<FaultPlan>) -> Snapshot {
    let (bx, mut global) = fcc_lattice(8, 8, 8, 4.4);
    init_velocities(&mut global, 60.0, 5);
    let lj = LennardJones::new(0.0104, 3.4, 5.0);
    let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);
    let decomp = Decomposition::new(bx, [2, 2, 2]);
    let mut sim = DistributedSim::new(decomp, &global, &lj, vv, scheme, 10);
    let reg = MetricsRegistry::new();
    sim.attach_obs(&reg);
    if let Some(p) = plan {
        sim.inject_faults(p);
    }
    for _ in 0..STEPS {
        sim.stride();
    }
    reg.snapshot()
}

/// Fault-injection runs must surface nonzero recovery counters through the
/// metrics registry — the observability layer sees the same retries and
/// fallback window the in-driver `FaultStats` reports.
#[test]
fn fault_runs_surface_nonzero_recovery_counters() {
    if !MetricsRegistry::new().is_enabled() {
        return;
    }
    let snap = run_observed(ExchangeScheme::NodeBased, Some(hostile_plan(fault_seed())));
    let retries = snap.counter("transport.retries").unwrap_or(0);
    assert!(retries > 0, "hostile plan must surface transport.retries > 0");
    assert!(
        snap.counter("transport.transmissions").unwrap_or(0)
            > snap.counter("comm.messages_sent").unwrap_or(u64::MAX),
        "physical transmissions must exceed logical messages under drops"
    );
    assert_eq!(
        snap.counter("comm.fallback_window_steps"),
        Some(4),
        "stall-leader=0@3+4 must be charged as a 4-step fallback window"
    );
}

/// Clean runs must report *exactly zero* on every fault-related counter —
/// the chaos metrics cannot false-positive on a healthy network.
#[test]
fn clean_runs_report_exactly_zero_fault_counters() {
    if !MetricsRegistry::new().is_enabled() {
        return;
    }
    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let snap = run_observed(scheme, None);
        for name in ["transport.retries", "transport.pool_exhausted", "comm.fallback_window_steps"]
        {
            assert_eq!(snap.counter(name), Some(0), "{scheme:?}: {name} on a clean run");
        }
        assert!(
            snap.counter("comm.messages_sent").unwrap_or(0) > 0,
            "{scheme:?}: the observed run must still record traffic"
        );
    }
}
