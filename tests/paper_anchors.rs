//! Paper-anchor integration tests: the quantitative claims of the paper,
//! asserted against the reproduction as bands. Heavyweight sweeps (the full
//! 12,000-node endpoint) are `#[ignore]`d here and exercised by the bench
//! harness; run them directly with `cargo test --release -- --ignored`.

use dpmd_repro::fugaku::machine::MachineConfig;
use dpmd_repro::scaling::experiments::{fig11, fig7, fig8, table3};
use dpmd_repro::scaling::kernels::OptLevel;
use dpmd_repro::scaling::systems::SystemSpec;

/// §VI: "reducing communication overhead by 81%" — at the strong-scaling
/// configuration, node-based vs the MPI baseline.
#[test]
fn communication_reduction_anchor() {
    let machine = MachineConfig::default();
    let row = fig7::run_config(&machine, 8.0, [0.5, 0.5, 0.5]);
    let reduction = 1.0 - row.times[5] as f64 / row.times[0] as f64;
    assert!((0.55..=0.95).contains(&reduction), "comm reduction {reduction:.2} (paper: 0.81)");
}

/// Fig. 8: the memory pool keeps per-message cost flat to 124 neighbours
/// while per-neighbour registration departs near 44.
#[test]
fn nic_cache_knee_anchor() {
    let machine = MachineConfig::default();
    let pts = fig8::run(&machine, 500);
    let knee = fig8::knee(&pts).expect("knee exists");
    assert!((44..=74).contains(&knee), "knee at {knee} (paper: 44)");
}

/// §VI: "79.7% reduction of atomic dispersion" (natom SDMR with lb).
#[test]
fn dispersion_anchor() {
    let rows = table3::run(1);
    let red = table3::dispersion_reduction(&rows);
    assert!((0.40..=0.95).contains(&red), "dispersion reduction {red:.2} (paper: 0.797)");
}

/// The 768-node starting point of Fig. 11 must already show a large
/// optimized-vs-baseline gap, and scaling to 2160 nodes must increase
/// ns/day at reasonable efficiency.
#[test]
fn strong_scaling_start_anchor() {
    let curve = fig11::run(SystemSpec::copper(), 2);
    assert!(curve.points[0].nsday_opt > 10.0, "768-node ns/day {}", curve.points[0].nsday_opt);
    let sp768 = curve.points[0].nsday_opt / curve.points[0].nsday_base;
    let sp2160 = curve.points[1].nsday_opt / curve.points[1].nsday_base;
    // At ~14.6 atoms/core the strong-scaling optimizations matter less;
    // the gap must widen as the per-core load shrinks (Fig. 11's shape).
    assert!(sp768 > 4.0, "768-node speedup {sp768:.1}");
    assert!(sp2160 > sp768, "speedup must grow with node count: {sp2160:.1} vs {sp768:.1}");
    let eff = curve.efficiency(1);
    assert!((0.3..1.01).contains(&eff), "efficiency {eff:.2}");
}

/// The headline: ~149 ns/day for copper and ~68.5 ns/day for water on
/// 12,000 nodes, with >25× speedups and 55–90% parallel efficiency.
/// Heavy (decomposes 0.5 M atoms over five topologies twice) — ignored by
/// default; the bench harness and `--ignored` runs cover it.
#[test]
#[ignore = "full 12,000-node sweep; run with --release -- --ignored"]
fn headline_endpoint_anchor() {
    let cu = fig11::run(SystemSpec::copper(), 5);
    let p = cu.points.last().unwrap();
    assert_eq!(p.nodes, 12_000);
    println!(
        "Cu endpoint: {:.1} ns/day, same-config speedup {:.1}x, vs published baseline {:.1}x",
        p.nsday_opt,
        cu.final_speedup(),
        p.nsday_opt / 4.7
    );
    assert!(
        (60.0..=320.0).contains(&p.nsday_opt),
        "Cu ns/day {} (paper: 149)",
        p.nsday_opt
    );
    // The paper's 31.7× compares 149 ns/day against the *published*
    // DeePMD-kit Fugaku baseline of 4.7 ns/day (Table I, a 2.1 M-atom run
    // on 4,560 nodes) — reproduce that ratio against the same constant.
    let paper_style = p.nsday_opt / 4.7;
    assert!((15.0..=60.0).contains(&paper_style), "Cu speedup {paper_style:.1} (paper: 31.7)");
    // Same-topology baseline comparison is necessarily smaller (our modeled
    // baseline benefits from the 4-rank layout); it must still be large.
    let same_config = cu.final_speedup();
    assert!(same_config > 8.0, "same-config speedup {same_config:.1}");
    let eff = cu.efficiency(cu.points.len() - 1);
    assert!((0.3..=0.95).contains(&eff), "Cu efficiency {eff:.2} (paper: 0.623)");

    let w = fig11::run(SystemSpec::water(), 5);
    let pw = w.points.last().unwrap();
    assert!(
        (25.0..=160.0).contains(&pw.nsday_opt),
        "H2O ns/day {} (paper: 68.5)",
        pw.nsday_opt
    );
    // Copper (1 fs steps) delivers more ns/day than water (0.5 fs).
    assert!(p.nsday_opt > pw.nsday_opt);
}

/// The Fig. 9 ladder ordering at the strong-scaling limit (1 atom/core).
#[test]
fn ladder_ordering_anchor() {
    use dpmd_repro::scaling::experiments::fig9;
    let row = fig9::run_config(SystemSpec::copper(), 1);
    let t: Vec<f64> = row.step_ns.iter().map(|&(_, ns)| ns).collect();
    // Monotone non-increasing along the paper's bar order.
    for w in t.windows(2) {
        assert!(w[1] <= w[0] * 1.02, "ladder regressed: {t:?}");
    }
    // End-to-end ladder factor is paper-scale (31.7× overall incl. comm).
    let total = t[0] / t[t.len() - 1];
    assert!((10.0..=70.0).contains(&total), "ladder factor {total:.1}");
}

/// Optimization levels map onto the paper's feature matrix.
#[test]
fn optimization_level_semantics() {
    assert!(OptLevel::Baseline.uses_tensorflow());
    assert!(!OptLevel::RmtfF64.uses_tensorflow());
    assert!(OptLevel::CommNolb.uses_node_comm());
    assert!(!OptLevel::SveF16.uses_node_comm());
    assert!(OptLevel::CommLb.uses_intranode_lb());
    assert!(!OptLevel::CommNolb.uses_intranode_lb());
}
