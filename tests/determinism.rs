//! Determinism across runs and thread counts.
//!
//! The threaded force pipeline (neighbor build + descriptor / embedding /
//! fitting passes) uses a chunk-ordered reduction whose chunk boundaries
//! depend only on the atom count, never on the pool width. The contract:
//! same seed ⇒ bit-identical trajectories, at any thread count. These tests
//! pin that contract end-to-end for both of the paper's systems over a
//! 50-step trajectory.

use dpmd_repro::core::prelude::*;
use dpmd_repro::minimd::sim::Thermo;
use dpmd_repro::minimd::vec3::Vec3;

/// A 50-step run: per-step thermo trace plus final positions and velocities.
fn run(water: bool, seed: u64, threads: usize) -> (Vec<Thermo>, Vec<Vec3>, Vec<Vec3>) {
    let ntypes = if water { 2 } else { 1 };
    let model = DeepPotModel::new(DeepPotConfig::tiny(ntypes, 6.0));
    let mut builder = Engine::builder().with_model(model).nve().seed(seed).threads(threads);
    builder = if water { builder.water_cells(2) } else { builder.copper_cells(2) };
    let mut engine = builder.build();
    let trace = engine.run(50);
    let atoms = &engine.simulation().atoms;
    (trace, atoms.pos.clone(), atoms.vel.clone())
}

fn assert_bit_identical(a: &(Vec<Thermo>, Vec<Vec3>, Vec<Vec3>), b: &(Vec<Thermo>, Vec<Vec3>, Vec<Vec3>), what: &str) {
    assert_eq!(a.0.len(), b.0.len(), "{what}: trace length");
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.pe.to_bits(), y.pe.to_bits(), "{what}: pe at step {}", x.step);
        assert_eq!(x.ke.to_bits(), y.ke.to_bits(), "{what}: ke at step {}", x.step);
        assert_eq!(x.temperature.to_bits(), y.temperature.to_bits(), "{what}: T at step {}", x.step);
        assert_eq!(x.pressure.to_bits(), y.pressure.to_bits(), "{what}: P at step {}", x.step);
    }
    for (i, (p, q)) in a.1.iter().zip(&b.1).enumerate() {
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "{what}: pos[{i}].x");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "{what}: pos[{i}].y");
        assert_eq!(p.z.to_bits(), q.z.to_bits(), "{what}: pos[{i}].z");
    }
    for (i, (p, q)) in a.2.iter().zip(&b.2).enumerate() {
        assert_eq!(p.x.to_bits(), q.x.to_bits(), "{what}: vel[{i}].x");
        assert_eq!(p.y.to_bits(), q.y.to_bits(), "{what}: vel[{i}].y");
        assert_eq!(p.z.to_bits(), q.z.to_bits(), "{what}: vel[{i}].z");
    }
}

#[test]
fn copper_trajectory_is_bit_identical_across_runs_and_threads() {
    let serial = run(false, 17, 1);
    let serial_again = run(false, 17, 1);
    assert_bit_identical(&serial, &serial_again, "copper 1t rerun");
    let threaded = run(false, 17, 4);
    assert_bit_identical(&serial, &threaded, "copper 1t vs 4t");
}

#[test]
fn water_trajectory_is_bit_identical_across_runs_and_threads() {
    let serial = run(true, 23, 1);
    let serial_again = run(true, 23, 1);
    assert_bit_identical(&serial, &serial_again, "water 1t rerun");
    let threaded = run(true, 23, 5);
    assert_bit_identical(&serial, &threaded, "water 1t vs 5t");
}

#[test]
fn different_seeds_actually_diverge() {
    // Guard against the determinism tests passing vacuously (e.g. frozen
    // velocities): different seeds must give different trajectories.
    let a = run(false, 1, 2);
    let b = run(false, 2, 2);
    assert_ne!(
        a.0.last().unwrap().ke.to_bits(),
        b.0.last().unwrap().ke.to_bits(),
        "seeds 1 and 2 produced identical kinetic energy"
    );
}
