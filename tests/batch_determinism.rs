//! The batch scheduler's hard correctness bar: every replica's trajectory
//! must be bit-identical to the same replica run solo, at any batch size,
//! admission bound, and thread count. Batching changes *when* GEMMs run,
//! never *what* they compute.

use dpmd_core::prelude::{DeepPotConfig, DeepPotModel, Precision};
use dpmd_core::EngineBuilder;
use dpmd_serve::BatchScheduler;
use proptest::prelude::*;

fn parts(threads: usize, precision: Precision) -> dpmd_core::EngineParts {
    EngineBuilder::default()
        .copper_cells(2)
        .precision(precision)
        .with_model(DeepPotModel::new(DeepPotConfig::tiny(1, 6.0)))
        .seed(7)
        .threads(threads)
        .build_parts()
}

fn assert_bitwise_equal(batched: &BatchScheduler, solo: &BatchScheduler, ctx: &str) {
    for (rb, rs) in batched.replicas().iter().zip(solo.replicas()) {
        assert_eq!(rb.trace.len(), rs.trace.len(), "{ctx}: replica {} trace length", rb.id);
        for (tb, ts) in rb.trace.iter().zip(&rs.trace) {
            assert_eq!(tb.pe.to_bits(), ts.pe.to_bits(), "{ctx}: replica {} step {} pe", rb.id, tb.step);
            assert_eq!(tb.ke.to_bits(), ts.ke.to_bits(), "{ctx}: replica {} step {} ke", rb.id, tb.step);
            assert_eq!(
                tb.pressure.to_bits(),
                ts.pressure.to_bits(),
                "{ctx}: replica {} step {} pressure",
                rb.id,
                tb.step
            );
        }
        let (ab, as_) = (&rb.sim.atoms, &rs.sim.atoms);
        for i in 0..ab.nlocal {
            for d in 0..3 {
                assert_eq!(
                    ab.pos[i][d].to_bits(),
                    as_.pos[i][d].to_bits(),
                    "{ctx}: replica {} atom {i} pos[{d}]",
                    rb.id
                );
                assert_eq!(
                    ab.vel[i][d].to_bits(),
                    as_.vel[i][d].to_bits(),
                    "{ctx}: replica {} atom {i} vel[{d}]",
                    rb.id
                );
            }
        }
    }
}

/// Batched == solo, bit for bit, for batch sizes {1, 3, 8} × threads {1, 4}.
#[test]
fn batched_trajectories_bitwise_equal_solo() {
    for &threads in &[1usize, 4] {
        for &replicas in &[1usize, 3, 8] {
            let steps = 6;
            let mut batched =
                BatchScheduler::new(parts(threads, Precision::Mix32), replicas, steps);
            batched.run();
            let mut solo = BatchScheduler::new(parts(threads, Precision::Mix32), replicas, steps);
            solo.run_sequential();
            assert_bitwise_equal(&batched, &solo, &format!("{replicas} replicas, {threads} threads"));
        }
    }
}

/// The admission bound must not change any replica's bits either — it only
/// reshuffles which replicas share a fused call.
#[test]
fn admission_bound_is_bitwise_invisible() {
    let steps = 5;
    let mut unbounded = BatchScheduler::new(parts(1, Precision::Mix32), 5, steps);
    unbounded.run();
    for k in [1usize, 2, 3] {
        let mut bounded =
            BatchScheduler::new(parts(1, Precision::Mix32), 5, steps).max_in_flight(k);
        let rounds = bounded.run();
        assert!(rounds >= steps * (5 / k.max(1)) as u64 / 2, "bound {k} must add rounds");
        assert_bitwise_equal(&bounded, &unbounded, &format!("max_in_flight {k}"));
    }
}

/// Mix16 exercises the fp16 batched first layer.
#[test]
fn mix16_batched_trajectories_bitwise_equal_solo() {
    let mut batched = BatchScheduler::new(parts(1, Precision::Mix16), 3, 4);
    batched.run();
    let mut solo = BatchScheduler::new(parts(1, Precision::Mix16), 3, 4);
    solo.run_sequential();
    assert_bitwise_equal(&batched, &solo, "mix16");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `gemm::batched_nn_*` must equal per-call `auto_nn_*` exactly for any
    /// shape and batch size.
    #[test]
    fn batched_gemm_equals_per_call_auto(
        batch in 1usize..6,
        m in 1usize..5,
        n in 1usize..12,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..batch * m * k).map(|_| rng.random_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect();
        let mut c_batched = vec![0.0f64; batch * m * n];
        nnet::gemm::batched_nn_f64(batch, m, n, k, &a, &b, &mut c_batched);
        let mut c_solo = vec![0.0f64; batch * m * n];
        for s in 0..batch {
            nnet::gemm::auto_nn_f64(m, n, k, &a[s * m * k..(s + 1) * m * k], &b, &mut c_solo[s * m * n..(s + 1) * m * n]);
        }
        prop_assert_eq!(&c_batched, &c_solo);

        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let mut c32_batched = vec![0.0f32; batch * m * n];
        nnet::gemm::batched_nn_f32(batch, m, n, k, &a32, &b32, &mut c32_batched);
        let mut c32_solo = vec![0.0f32; batch * m * n];
        for s in 0..batch {
            nnet::gemm::auto_nn_f32(m, n, k, &a32[s * m * k..(s + 1) * m * k], &b32, &mut c32_solo[s * m * n..(s + 1) * m * n]);
        }
        prop_assert_eq!(&c32_batched, &c32_solo);
    }
}
