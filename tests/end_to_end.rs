//! End-to-end integration through the public `dpmd-core` API: train, run
//! MD at every precision, observe physically sane behaviour.

use dpmd_repro::core::prelude::*;
use dpmd_repro::minimd::compute::Rdf;

#[test]
fn full_pipeline_copper_all_precisions() {
    for precision in [Precision::Double, Precision::Mix32, Precision::Mix16] {
        let mut engine = Engine::builder()
            .copper_cells(2)
            .precision(precision)
            .temperature(150.0)
            .training(2, 15)
            .seed(9)
            .build();
        let trace = engine.run(20);
        let last = trace.last().unwrap();
        assert!(last.etotal.is_finite(), "{precision:?}");
        assert!(last.temperature > 0.0 && last.temperature < 2000.0, "{precision:?}: T {}", last.temperature);
        // Atoms stayed in the box.
        let sim = engine.simulation();
        assert!(sim.atoms.pos.iter().all(|&p| sim.bx.contains(p)), "{precision:?}");
    }
}

#[test]
fn water_md_produces_a_structured_rdf() {
    let mut engine = Engine::builder()
        .water_cells(3)
        .precision(Precision::Mix32)
        .temperature(300.0)
        .training(2, 15)
        .seed(4)
        .build();
    // 30 steps is enough for the structural assertions below (excluded
    // volume + a first-shell peak); 60 bought no extra signal for twice
    // the debug wall time.
    engine.run(30);
    let sim = engine.simulation();
    let mut rdf = Rdf::new(Some(0), Some(0), 6.0, 60);
    rdf.sample(&sim.atoms, &sim.bx);
    let curve = rdf.finish();
    // Excluded volume at short range, structure at intermediate range.
    let short: f64 = curve.iter().filter(|&&(r, _)| r < 2.0).map(|&(_, g)| g).sum();
    assert!(short < 0.5, "no O-O pairs inside 2 Å, got {short}");
    let peak = curve.iter().map(|&(_, g)| g).fold(0.0, f64::max);
    assert!(peak > 1.0, "some first-shell structure, peak {peak}");
}

#[test]
fn precision_modes_agree_on_the_first_step() {
    // With identical initial conditions, one step at the three precisions
    // yields nearly identical energies (Table II's premise).
    let model = {
        let engine = Engine::builder().copper_cells(2).training(2, 20).seed(5).build();
        drop(engine);
        // Rebuild deterministically: same seed → same model.
        DeepPotModel::new(DeepPotConfig::tiny(1, 6.0))
    };
    let mut energies = Vec::new();
    for precision in [Precision::Double, Precision::Mix32, Precision::Mix16] {
        let mut engine = Engine::builder()
            .copper_cells(2)
            .precision(precision)
            .with_model(model.clone())
            .temperature(100.0)
            .seed(6)
            .build();
        let t = engine.run(1);
        energies.push(t[0].pe);
    }
    let scale = energies[0].abs().max(1.0);
    assert!((energies[0] - energies[1]).abs() / scale < 1e-5, "{energies:?}");
    assert!((energies[0] - energies[2]).abs() / scale < 1e-2, "{energies:?}");
}

#[test]
fn performance_api_is_consistent_with_scaling_experiments() {
    // Scaled-down spec: the consistency contract under test (optimization
    // helps, breakdown components are positive, ns/day recomputes from the
    // breakdown) is size-free, and the full 0.54 M-atom system at the
    // paper's node counts is exercised by the #[ignore]d paper anchors in
    // their own CI job. Full size here cost ~100 s of the tier-1 debug
    // wall; this runs in well under a second.
    let mut spec = SystemSpec::copper();
    spec.target_atoms = 16_000;
    let perf = Performance::new(spec);
    let nodes = [2usize, 3, 2];
    let opt = perf.nsday(nodes, OptLevel::CommLb);
    let base = perf.nsday(nodes, OptLevel::Baseline);
    assert!(opt > base, "optimization must help: {opt} vs {base}");
    let step = perf.step(nodes, OptLevel::CommLb);
    assert!(step.pair_ns > 0.0 && step.comm_ns > 0.0);
    // ns/day consistency with the breakdown.
    let recomputed = step.ns_per_day(perf.spec().timestep_fs);
    assert!((recomputed - opt).abs() / opt < 1e-12);
}
