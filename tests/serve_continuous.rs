//! The continuous service's hard correctness bar: any arrival/departure
//! schedule — staggered attach rounds, priority classes, deadlines,
//! mid-flight pause/detach, bounded in-flight caps, bounded admission
//! queues — leaves every tenant's trajectory bit-identical to the same
//! seed stepped solo. Scheduling changes *when* a tenant's GEMM rows run,
//! never *what* they compute.

use dpmd_core::prelude::{DeepPotConfig, DeepPotModel, Precision};
use dpmd_core::EngineBuilder;
use dpmd_serve::{
    ArrivalScript, BatchScheduler, ContinuousScheduler, InFlightCap, TenantState,
};
use proptest::prelude::*;

fn parts(threads: usize) -> dpmd_core::EngineParts {
    EngineBuilder::default()
        .copper_cells(2)
        .precision(Precision::Mix32)
        .with_model(DeepPotModel::new(DeepPotConfig::tiny(1, 6.0)))
        .seed(7)
        .threads(threads)
        .build_parts()
}

/// Solo traces for tenants `0..n` at `steps` each, via the sequential
/// (unbatched) reference path. Seed mapping (`base + id`) matches the
/// continuous scheduler's.
fn solo_reference(threads: usize, n: usize, steps: u64) -> BatchScheduler {
    let mut s = BatchScheduler::new(parts(threads), n, steps);
    s.run_sequential();
    s
}

/// Every non-rejected tenant must match its solo replica bit for bit:
/// thermo trace and final positions/velocities.
fn assert_tenants_bitwise_solo(served: &ContinuousScheduler, solo: &BatchScheduler, ctx: &str) {
    for t in served.tenants() {
        let r = &solo.replicas()[t.id];
        assert_eq!(t.seed, r.seed, "{ctx}: tenant {} seed mapping", t.id);
        assert!(
            matches!(t.state, TenantState::Finished { .. }),
            "{ctx}: tenant {} must finish (state {:?})",
            t.id,
            t.state
        );
        assert_eq!(t.trace.len(), r.trace.len(), "{ctx}: tenant {} trace length", t.id);
        for (tb, ts) in t.trace.iter().zip(&r.trace) {
            assert_eq!(tb.pe.to_bits(), ts.pe.to_bits(), "{ctx}: tenant {} step {} pe", t.id, tb.step);
            assert_eq!(tb.ke.to_bits(), ts.ke.to_bits(), "{ctx}: tenant {} step {} ke", t.id, tb.step);
            assert_eq!(
                tb.pressure.to_bits(),
                ts.pressure.to_bits(),
                "{ctx}: tenant {} step {} pressure",
                t.id,
                tb.step
            );
        }
        let (at, ar) = (&t.sim.atoms, &r.sim.atoms);
        for i in 0..at.nlocal {
            for d in 0..3 {
                assert_eq!(
                    at.pos[i][d].to_bits(),
                    ar.pos[i][d].to_bits(),
                    "{ctx}: tenant {} atom {i} pos[{d}]",
                    t.id
                );
                assert_eq!(
                    at.vel[i][d].to_bits(),
                    ar.vel[i][d].to_bits(),
                    "{ctx}: tenant {} atom {i} vel[{d}]",
                    t.id
                );
            }
        }
    }
}

fn run_script_and_check(spec: &str, cap: InFlightCap, threads: usize, ctx: &str) {
    let script = ArrivalScript::parse(spec).unwrap();
    let mut served = ContinuousScheduler::new(parts(threads), cap, script.queue_capacity);
    let outcome = served.run_script(&script);
    assert!(outcome.rejected.is_empty(), "{ctx}: no rejections expected in this script");
    assert_eq!(served.tenants().len(), script.tenants, "{ctx}: all tenants attached");
    let solo = solo_reference(threads, script.tenants, script.steps);
    assert_tenants_bitwise_solo(&served, &solo, ctx);
}

/// Acceptance: three distinct fixed arrival schedules — staggered seeded
/// arrivals, priority classes with deadlines, and a mid-flight pause — all
/// bit-identical to solo.
#[test]
fn fixed_schedule_staggered_arrivals_bitwise_solo() {
    run_script_and_check(
        "seed=3;tenants=5;steps=6;window=4",
        InFlightCap::All,
        1,
        "staggered arrivals",
    );
}

#[test]
fn fixed_schedule_priorities_and_deadlines_bitwise_solo() {
    run_script_and_check(
        "seed=9;tenants=5;steps=6;window=3;prio=4:interactive;prio=0:batch;deadline=2@4;deadline=3@20",
        "2".parse().unwrap(),
        1,
        "priorities+deadlines under cap 2",
    );
}

#[test]
fn fixed_schedule_midflight_pause_bitwise_solo() {
    run_script_and_check(
        "seed=1;tenants=4;steps=8;window=2;pause=1@4+3;pause=2@5+2",
        "3".parse().unwrap(),
        1,
        "mid-flight pause/detach",
    );
}

/// The same schedule at a different thread-pool width must also match the
/// single-threaded solo reference (thread count is bitwise invisible).
#[test]
fn threads_are_bitwise_invisible_to_the_service() {
    let spec = "seed=5;tenants=4;steps=5;window=3;pause=0@3+2";
    let script = ArrivalScript::parse(spec).unwrap();
    let mut served = ContinuousScheduler::new(parts(4), "2".parse().unwrap(), usize::MAX);
    served.run_script(&script);
    let solo = solo_reference(1, script.tenants, script.steps);
    assert_tenants_bitwise_solo(&served, &solo, "4 threads vs solo 1 thread");
}

/// A full admission queue refuses attach with typed backpressure — no
/// panic, no silent queueing — and the survivors still match solo.
#[test]
fn backpressure_rejects_typed_and_survivors_stay_bitwise() {
    let script = ArrivalScript::parse("tenants=6;steps=4;at=0@1;at=1@1;at=2@1;at=3@1;at=4@1;at=5@1;queue=3").unwrap();
    let mut served =
        ContinuousScheduler::new(parts(1), "1".parse().unwrap(), script.queue_capacity);
    let outcome = served.run_script(&script);
    assert_eq!(outcome.rejected, vec![3, 4, 5], "arrivals past the queue bound are refused");
    assert_eq!(served.tenants().len(), 3);
    let solo = solo_reference(1, 3, script.steps);
    assert_tenants_bitwise_solo(&served, &solo, "backpressure survivors");
}

#[test]
fn attach_backpressure_is_a_typed_error() {
    use dpmd_serve::{AdmitError, TenantSpec};
    let mut served = ContinuousScheduler::new(parts(1), InFlightCap::All, 2);
    served.attach(TenantSpec::new(0, 2)).unwrap();
    served.attach(TenantSpec::new(1, 2)).unwrap();
    let err = served.attach(TenantSpec::new(2, 2)).unwrap_err();
    assert_eq!(err, AdmitError::Backpressure { capacity: 2, waiting: 2 });
    assert_eq!(served.tenants().len(), 2, "a refused attach creates no tenant state");
}

/// Priority classes and deadlines control admission order (interactive
/// first, then EDF within a class) without touching any trajectory.
#[test]
fn admission_order_respects_class_then_deadline() {
    let script = ArrivalScript::parse(
        "tenants=4;steps=3;at=0@1;at=1@1;at=2@1;at=3@1;prio=3:interactive;prio=0:batch;deadline=2@5;deadline=1@9",
    )
    .unwrap();
    let mut served = ContinuousScheduler::new(parts(1), "1".parse().unwrap(), usize::MAX);
    served.run_script(&script);
    let admitted: Vec<(usize, u64)> = served
        .tenants()
        .iter()
        .map(|t| (t.id, t.admitted_round.expect("all admitted")))
        .collect();
    let round_of = |id: usize| admitted.iter().find(|(i, _)| *i == id).unwrap().1;
    assert!(round_of(3) < round_of(2), "interactive admits before standard");
    assert!(round_of(2) < round_of(1), "earlier deadline admits first within a class");
    assert!(round_of(1) < round_of(0), "batch class admits last");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: a random schedule (seeded arrivals, random caps, random
    /// pause windows, random queue bounds) leaves every attached tenant
    /// bitwise identical to its solo trajectory.
    #[test]
    fn any_schedule_is_bitwise_invisible(
        seed in 0u64..1000,
        tenants in 2usize..6,
        steps in 2u64..7,
        window in 1u64..5,
        cap_k in 0usize..4, // 0 = All
        pause_id in 0usize..6,
        pause_round in 2u64..5,
        pause_len in 1u64..4,
    ) {
        let mut spec = format!("seed={seed};tenants={tenants};steps={steps};window={window}");
        if pause_id < tenants {
            spec.push_str(&format!(";pause={pause_id}@{pause_round}+{pause_len}"));
        }
        let cap = if cap_k == 0 { InFlightCap::All } else { InFlightCap::from_legacy_count(cap_k) };
        let script = ArrivalScript::parse(&spec).unwrap();
        let mut served = ContinuousScheduler::new(parts(1), cap, usize::MAX);
        let outcome = served.run_script(&script);
        prop_assert!(outcome.rejected.is_empty());
        let solo = solo_reference(1, tenants, steps);
        assert_tenants_bitwise_solo(&served, &solo, &format!("prop {spec} cap {cap}"));
    }
}
