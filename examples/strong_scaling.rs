//! Fig. 11 / Table I scenario: strong scaling of the 0.54 M-atom copper and
//! 0.56 M-atom water systems from 768 to 12,000 simulated Fugaku nodes.
//!
//! ```sh
//! cargo run --release --example strong_scaling          # full sweep
//! cargo run --release --example strong_scaling -- 3     # first 3 points
//! ```

use dpmd_repro::scaling::experiments::{fig11, table1};
use dpmd_repro::scaling::systems::SystemSpec;

fn main() {
    let max_points: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5).clamp(1, 5);

    for spec in [SystemSpec::copper(), SystemSpec::water()] {
        println!("building {:?} strong-scaling curve ({max_points} topologies)...", spec.benchmark);
        let curve = fig11::run(spec, max_points);
        println!("{}", fig11::table(&curve).render());
        println!(
            "endpoint: {:.1} ns/day, {:.1}x over baseline (paper: {} ns/day, {}x)\n",
            curve.points.last().unwrap().nsday_opt,
            curve.final_speedup(),
            if matches!(spec.benchmark, dpmd_repro::scaling::systems::Benchmark::Copper) {
                dpmd_repro::headline::PAPER_CU_NSDAY
            } else {
                dpmd_repro::headline::PAPER_H2O_NSDAY
            },
            if matches!(spec.benchmark, dpmd_repro::scaling::systems::Benchmark::Copper) {
                dpmd_repro::headline::PAPER_CU_SPEEDUP
            } else {
                dpmd_repro::headline::PAPER_H2O_SPEEDUP
            },
        );
    }

    println!("{}", table1::table(max_points).render());
}
