//! Quickstart: train a small Deep Potential model on EAM-labelled copper,
//! run MD with it, and predict the paper's at-scale performance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dpmd_repro::core::prelude::*;

fn main() {
    println!("== dpmd-repro quickstart ==\n");

    // 1. Functional MD: a 3×3×3-cell copper box (108 atoms) with a Deep
    //    Potential trained on Sutton–Chen labels, MIX-fp32 inference.
    println!("training a small copper Deep Potential and running 200 MD steps...");
    let mut engine = Engine::builder()
        .copper_cells(3)
        .precision(Precision::Mix32)
        .temperature(300.0)
        .training(4, 60)
        .seed(7)
        .build();
    let trace = engine.run(200);
    let last = trace.last().unwrap();
    println!(
        "  step {:4}:  E = {:+.3} eV   T = {:.1} K   P = {:+.0} bar",
        last.step, last.etotal, last.temperature, last.pressure
    );

    // 2. Performance prediction: the paper's headline configuration —
    //    0.54 M copper atoms on 12,000 simulated Fugaku nodes.
    println!("\npredicting at-scale performance (0.54M Cu atoms)...");
    let perf = Performance::new(SystemSpec::copper());
    for (label, nodes) in [("768 nodes", [8usize, 12, 8]), ("12,000 nodes", [20, 30, 20])] {
        let nsday = perf.nsday(nodes, OptLevel::CommLb);
        let speedup = perf.speedup(nodes);
        println!("  {label:>12}: {nsday:6.1} ns/day   ({speedup:.1}x over baseline DeePMD-kit)");
    }
    println!(
        "\npaper reference: {} ns/day, {}x on 12,000 nodes",
        dpmd_repro::headline::PAPER_CU_NSDAY,
        dpmd_repro::headline::PAPER_CU_SPEEDUP
    );
}
