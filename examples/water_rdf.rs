//! Fig. 6 scenario: the O–O radial distribution function of water under
//! Double, MIX-fp32 and MIX-fp16 precision — the curves must overlap.
//!
//! ```sh
//! cargo run --release --example water_rdf
//! ```

use dpmd_repro::scaling::experiments::fig6;

fn main() {
    println!("== water RDF under three precisions (paper Fig. 6) ==\n");
    let cfg = fig6::Fig6Config::default();
    println!(
        "training a water Deep Potential ({} frames, {} epochs), then 3 × {} MD steps...\n",
        cfg.train_frames, cfg.epochs, cfg.steps
    );
    let curves = fig6::run(cfg);
    println!("{}", fig6::table(&curves).render());
    let d32 = fig6::max_deviation(&curves[0], &curves[1]);
    let d16 = fig6::max_deviation(&curves[0], &curves[2]);
    println!("max |Δg| Double vs MIX-fp32: {d32:.3}");
    println!("max |Δg| Double vs MIX-fp16: {d16:.3}");
    println!("(paper: \"the three curves overlap perfectly\")");
}
