//! Distributed MD: run the same copper system three ways — single box,
//! rank-p2p exchange, and the paper's node-based exchange — and show that
//! the trajectories coincide while the *communication bill* differs.
//!
//! ```sh
//! cargo run --release --example distributed_md
//! ```

use dpmd_repro::comm::driver::DistributedSim;
use dpmd_repro::comm::functional::ExchangeScheme;
use dpmd_repro::comm::node_based::{self, NodeSchemeConfig};
use dpmd_repro::comm::plan::HaloPlan;
use dpmd_repro::fugaku::machine::MachineConfig;
use dpmd_repro::fugaku::tofu::Torus3d;
use dpmd_repro::minimd::domain::Decomposition;
use dpmd_repro::minimd::integrate::{init_velocities, VelocityVerlet};
use dpmd_repro::minimd::lattice::fcc_lattice;
use dpmd_repro::minimd::potential::lj::LennardJones;
use dpmd_repro::minimd::sim::Simulation;
use dpmd_repro::minimd::units::FEMTOSECOND;

fn main() {
    let (bx, mut global) = fcc_lattice(8, 8, 8, 4.4);
    init_velocities(&mut global, 80.0, 7);
    let lj = LennardJones::new(0.0104, 3.4, 5.0);
    let vv = VelocityVerlet::new(2.0 * FEMTOSECOND);
    let steps = 50u64;
    println!("== distributed MD equivalence ({} atoms, {steps} steps) ==\n", global.nlocal);

    // Reference: single box.
    let mut reference =
        Simulation::new(bx, global.clone(), Box::new(lj), vv.clone(), 1.0, 10);
    for _ in 0..steps {
        reference.step();
    }
    let t_ref = reference.thermo();
    println!("single box     : E = {:+.4} eV   T = {:.1} K", t_ref.etotal, t_ref.temperature);

    // Distributed, both schemes, 2×2×2 nodes (32 ranks).
    for scheme in [ExchangeScheme::RankP2p, ExchangeScheme::NodeBased] {
        let decomp = Decomposition::new(bx, [2, 2, 2]);
        let mut dist = DistributedSim::new(decomp, &global, &lj, vv.clone(), scheme, 10);
        let mut last = (0.0, 0.0);
        for _ in 0..steps {
            last = dist.stride();
        }
        // Worst positional deviation vs the reference.
        let gathered = dist.gather();
        let mut by_id = std::collections::HashMap::new();
        for i in 0..reference.atoms.nlocal {
            by_id.insert(reference.atoms.id[i], reference.atoms.pos[i]);
        }
        let worst = (0..gathered.nlocal)
            .map(|i| bx.min_image(gathered.pos[i], by_id[&gathered.id[i]]).norm())
            .fold(0.0f64, f64::max);
        println!(
            "{scheme:?}: E = {:+.4} eV   max |Δr| vs single box = {worst:.2e} Å",
            last.0 + last.1
        );
    }

    // The communication bill of the same workload, per the timing model.
    println!("\n== what each exchange would cost on the simulated Fugaku ==");
    let machine = MachineConfig::default();
    let decomp = Decomposition::new(bx, [2, 2, 2]);
    let torus = Torus3d::new([2, 2, 2]);
    let plan = HaloPlan::build(&decomp, &global, 5.0);
    let apr: Vec<usize> = decomp.counts_per_rank(&global).into_iter().map(|c| c as usize).collect();
    let node =
        node_based::simulate_round_trip(&machine, &decomp, &torus, &plan, &apr, NodeSchemeConfig::paper_best());
    println!(
        "node-based round trip: {:.1} µs, {} inter-node messages, {:.1} KiB on the wire",
        node.comm.total_ns as f64 / 1000.0,
        node.comm.internode_messages,
        node.comm.internode_bytes as f64 / 1024.0
    );
    println!(
        "rank-level plan would send {} messages / {:.1} KiB (the aggregation saving: {:.0}%)",
        plan.rank_message_count(),
        (plan.rank_ghost_atoms() * dpmd_repro::comm::ATOM_FORWARD_BYTES) as f64 / 1024.0,
        plan.aggregation_saving() * 100.0
    );
}
