//! Figs. 7–8 scenario: compare the communication organizations on the
//! simulated TofuD network, and the RDMA memory-pool sweep.
//!
//! ```sh
//! cargo run --release --example comm_schemes
//! ```

use dpmd_repro::fugaku::machine::MachineConfig;
use dpmd_repro::scaling::experiments::{fig7, fig8};

fn main() {
    let machine = MachineConfig::default();

    println!("simulating the eight Fig. 7 bars on 96 nodes (4x6x4)...\n");
    let rows = fig7::run(&machine);
    println!("{}", fig7::table(&rows).render());
    // The paper's headline: the node scheme's saving at the strong-scaling
    // configuration.
    if let Some(strong) = rows.iter().find(|r| r.rc == 8.0 && r.frac == [0.5, 0.5, 0.5]) {
        let reduction = 1.0 - strong.times[5] as f64 / strong.times[0] as f64;
        println!(
            "node-based vs MPI baseline at [0.5,0.5,0.5]·rc: {:.0}% less comm time (paper: 81%)\n",
            reduction * 100.0
        );
    }

    println!("sweeping the Fig. 8 memory-pool experiment (10k iterations, 8 B payloads)...\n");
    let points = fig8::run(&machine, 10_000);
    println!("{}", fig8::table(&points).render());
    if let Some(knee) = fig8::knee(&points) {
        println!("per-neighbor registration departs at ~{knee} neighbors (paper: 44)");
    }
}
