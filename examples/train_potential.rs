//! Train a Deep Potential model on reference-potential labels (the AIMD
//! stand-in), report Table II-style accuracy at the three precisions, and
//! save the checkpoint to JSON.
//!
//! ```sh
//! cargo run --release --example train_potential          # copper
//! cargo run --release --example train_potential -- water
//! ```

use dpmd_repro::deepmd::config::DeepPotConfig;
use dpmd_repro::deepmd::dataset;
use dpmd_repro::deepmd::model::DeepPotModel;
use dpmd_repro::deepmd::train::{eval_errors, fit_energy_bias, train, TrainConfig};
use dpmd_repro::nnet::precision::Precision;
use dpmd_repro::scaling::experiments::table2;

fn main() {
    let water = std::env::args().nth(1).as_deref() == Some("water");
    let (name, cfg, frames) = if water {
        ("water (SPC/Fw-surrogate labels)", DeepPotConfig::tiny(2, 6.0), dataset::water_frames(8, 3, 0, 11))
    } else {
        ("copper (Sutton–Chen EAM labels)", DeepPotConfig::tiny(1, 6.0), dataset::copper_frames(8, 3, 0.1, 11))
    };
    println!("== training a Deep Potential on {name} ==");
    let (train_set, val_set) = dataset::split(frames, 0.75);
    println!("{} training frames, {} validation frames", train_set.len(), val_set.len());

    let mut model = DeepPotModel::new(cfg);
    fit_energy_bias(&mut model, &train_set);
    let (e0, f0) = eval_errors(&model, &val_set);
    println!("before training: energy MAE {e0:.4} eV/atom, force RMSE {f0:.4} eV/Å");

    let history = train(&mut model, &train_set, TrainConfig { epochs: 200, lr: 3e-3, log_every: 50 });
    let (e1, f1) = eval_errors(&model, &val_set);
    println!(
        "after {} epochs:  energy MAE {e1:.4} eV/atom, force RMSE {f1:.4} eV/Å (loss {:.2e} → {:.2e})",
        history.len(),
        history.first().unwrap(),
        history.last().unwrap()
    );

    println!("\nper-precision validation error (paper Table II shape):");
    for p in Precision::ALL {
        let (e, f) = table2::errors_at(&model, p, &val_set);
        println!("  {:9}  energy {e:.2e} eV/atom   force {f:.2e} eV/Å", p.label());
    }

    let path = std::env::temp_dir().join("dp_model.json");
    std::fs::write(&path, model.to_json()).expect("write checkpoint");
    println!("\ncheckpoint saved to {}", path.display());
    let reloaded = DeepPotModel::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let (e2, _) = eval_errors(&reloaded, &val_set);
    assert_eq!(e1, e2, "checkpoint round-trip must be exact");
    println!("checkpoint round-trip verified (bit-exact).");
}
