//! Visualize where one node-based halo exchange spends its time: an ASCII
//! Gantt trace of a hand-built schedule on the event simulator — gather
//! copies, the six TNIs pumping, scatter, and the closing sync.
//!
//! ```sh
//! cargo run --release --example comm_trace
//! ```

use dpmd_repro::fugaku::event::JobGraph;
use dpmd_repro::fugaku::machine::MachineConfig;
use dpmd_repro::fugaku::utofu::{ApiCosts, CommApi};

fn main() {
    let m = MachineConfig::default();
    let costs = ApiCosts::of(CommApi::Utofu);
    let mut g = JobGraph::new();
    let mut labels = Vec::new();

    // One node at the strong-scaling point: 4 workers gather ~14 atoms each,
    // 6 TNIs ship 35 messages of ~1.2 KiB, receive-side threads scatter.
    let sync0 = g.job(&[], None, m.chip.sync_latency_ns as u64, 0);
    labels.push("sync(counts)".to_string());
    let workers = g.resources(4);
    let mut gathers = Vec::new();
    for (k, &w) in workers.iter().enumerate() {
        let bytes = 14 * 32;
        let busy = m.chip.cross_numa_copy_ns(bytes, 4) as u64;
        gathers.push(g.job(&[sync0], Some(w), busy, 0));
        labels.push(format!("gather w{k}"));
    }
    let tnis = g.resources(6);
    let threads = g.resources(24);
    let mut receives = Vec::new();
    for msg in 0..35usize {
        let thread = threads[msg % threads.len()];
        let tni = tnis[msg % tnis.len()];
        let post = g.job(&gathers, Some(thread), costs.send_overhead_ns, 0);
        labels.push(format!("post m{msg:02}"));
        let bytes = 1_200usize;
        let inj = g.job(
            &[post],
            Some(tni),
            m.tni.engine_overhead_ns + (bytes as f64 / m.tofu.link_bw) as u64,
            m.tofu.base_latency_ns as u64 + 2 * m.tofu.hop_latency_ns as u64,
        );
        labels.push(format!("tni  m{msg:02}"));
        let scat = g.job(
            &[inj],
            Some(thread),
            costs.recv_overhead_ns + m.chip.cross_numa_copy_ns(4 * bytes, 4) as u64,
            0,
        );
        labels.push(format!("scat m{msg:02}"));
        receives.push(scat);
    }
    g.job(&receives, None, m.chip.sync_latency_ns as u64, 0);
    labels.push("sync(done)".to_string());

    let schedule = g.run();
    println!("== one node-based halo exchange, strong-scaling shape ==\n");
    // Show the head of the schedule (first 24 jobs) and the totals.
    println!("{}", schedule.gantt(&labels, 72, 24));
    println!("(…{} more jobs; full makespan {} ns)", labels.len().saturating_sub(24), schedule.makespan);
}
